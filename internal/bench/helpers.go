package bench

import (
	"math/rand"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/onesided"
)

func newTestRng() *rand.Rand { return rand.New(rand.NewSource(99)) }

func randomBipartite(rng *rand.Rand, nl, nr int, density float64) *bipartite.Graph {
	g := bipartite.New(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < density {
				g.AddEdge(int32(l), int32(r))
			}
		}
	}
	return g
}

func hkSize(g *bipartite.Graph) ([]int32, []int32, int) {
	return bipartite.HopcroftKarp(g)
}

// solvableUniform draws uniform instances at posts/applicants ratio 1.5 with
// lists of 3..7 — above the existence threshold, so a solvable draw arrives
// within a few tries at any scale — and returns it with its plain popular
// matching.
func solvableUniform(rng *rand.Rand, n int) (*onesided.Instance, core.Result) {
	for tries := 0; tries < 200; tries++ {
		ins := onesided.RandomStrict(rng, n, n+n/2, 3, 7)
		r, err := core.Popular(ins, core.Options{})
		if err != nil {
			panic(err)
		}
		if r.Exists {
			return ins, r
		}
	}
	panic("bench: no solvable uniform draw in 200 tries")
}
