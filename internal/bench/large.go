package bench

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/onesided"
	"repro/popmatch"
)

// DefaultLargeN is the applicant count of the `large` scenario: big enough
// (n ≥ 10^5) that the instance-representation layout — flat CSR arrays vs
// pointer-chasing slices-of-slices — dominates cache behavior and bytes/op.
// CI smoke runs pass a reduced n via popbench -n.
const DefaultLargeN = 100000

// largeInstance builds the deterministic large-scenario workload: a solvable
// strict instance with a 25% post surplus and 5-entry lists, the same shape
// as the pool scenario but at 50x the scale.
func largeInstance(seed int64, n int) *onesided.Instance {
	rng := rand.New(rand.NewSource(seed))
	return onesided.Solvable(rng, n, n/4, 5)
}

// LargeBench measures the steady-state cost of repeated solves of one large
// (n >= 10^5 by default) strict instance on a persistent Solver. The
// bytes/op and allocs/op of `large_reuse` are the headline numbers the CSR
// refactor is accountable to (BENCH_csr.json); `large_one_shot` prices the
// throwaway-Solver path and `large_solve_into` the allocation-free result
// reuse API on the same instance.
func LargeBench(seed int64, n int) []PoolRecord {
	if n <= 0 {
		n = DefaultLargeN
	}
	var out []PoolRecord
	ins := largeInstance(seed, n)
	workers := runtime.GOMAXPROCS(0)
	rounds, work := traceCosts(ins, workers)

	s := popmatch.NewSolver(popmatch.Options{Workers: workers})
	reuse := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if _, err := s.Solve(ctx, ins); err != nil {
				b.Fatal(err)
			}
		}
	})
	out = append(out, record("large_reuse", n, 1, workers, rounds, work, reuse))

	into := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		ctx := context.Background()
		var res popmatch.Result
		for i := 0; i < b.N; i++ {
			if err := s.SolveInto(ctx, ins, &res); err != nil {
				b.Fatal(err)
			}
		}
	})
	s.Close()
	out = append(out, record("large_solve_into", n, 1, workers, rounds, work, into))

	oneShot := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := popmatch.Solve(ins, popmatch.Options{Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	})
	out = append(out, record("large_one_shot", n, 1, workers, rounds, work, oneShot))
	return out
}

// WriteLargeJSON runs LargeBench and writes the records as indented JSON
// (the BENCH_csr.json trajectory). n <= 0 selects DefaultLargeN.
func WriteLargeJSON(w io.Writer, seed int64, n int) error {
	records := LargeBench(seed, n)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
