package bench

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/popmatch"
)

// tiesInstance builds the deterministic ties workload for size n: uniform
// lists of 2–6 entries with a 30% tie probability, the regime where the §V
// characterization (rather than the strict Algorithm 1 kernel) does the
// work.
func tiesInstance(seed int64, n int) *popmatch.Instance {
	rng := rand.New(rand.NewSource(seed))
	return popmatch.RandomTies(rng, n, n, 2, 6, 0.3)
}

// TiesBench gives the §V ties path a tracked perf trajectory alongside the
// pool/csr/capacitated scenarios: repeated SolveTies (first-found and
// max-cardinality) on a persistent Solver across sizes and worker counts,
// plus the strict-kernel baseline on a same-sized strict instance so the
// cost of the ties machinery itself is the visible diff. n > 0 overrides
// the size sweep with a single size (the CI smoke path).
func TiesBench(seed int64, n int) []PoolRecord {
	sizes := []int{500, 2000}
	if n > 0 {
		sizes = []int{n}
	}
	var out []PoolRecord
	workersSet := []int{1, runtime.GOMAXPROCS(0)}
	if workersSet[1] == 1 {
		workersSet = workersSet[:1]
	}
	for _, size := range sizes {
		ins := tiesInstance(seed, size)
		strict := poolInstance(seed, size)
		for _, workers := range workersSet {
			s := popmatch.NewSolver(popmatch.Options{Workers: workers})
			for _, tc := range []struct {
				name    string
				mode    popmatch.Mode
				maxcard bool
			}{{"ties_solve", popmatch.ModeTies, false}, {"tiesmax_solve", popmatch.ModeTiesMax, true}} {
				rounds, work := traceRequestCosts(ins, workers, popmatch.Request{Mode: tc.mode})
				r := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					ctx := context.Background()
					for i := 0; i < b.N; i++ {
						if _, err := s.SolveTies(ctx, ins, tc.maxcard); err != nil {
							b.Fatal(err)
						}
					}
				})
				out = append(out, record(tc.name, size, 1, workers, rounds, work, r))
			}
			tiesRounds, tiesWork := traceRequestCosts(ins, workers, popmatch.Request{Mode: popmatch.ModeTies})
			strictRounds, strictWork := traceCosts(strict, workers)
			// The engine's result-recycling surface: repeated SolveTiesInto
			// on one solver is the steady state the arena-resident ties
			// kernel targets (zero allocs/op; pinned by the CI canary).
			intoR := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				ctx := context.Background()
				var res popmatch.Result
				for i := 0; i < b.N; i++ {
					if err := s.SolveTiesInto(ctx, ins, false, &res); err != nil {
						b.Fatal(err)
					}
				}
			})
			out = append(out, record("ties_solve_into", size, 1, workers, tiesRounds, tiesWork, intoR))
			baseline := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				ctx := context.Background()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(ctx, strict); err != nil {
						b.Fatal(err)
					}
				}
			})
			s.Close()
			out = append(out, record("ties_strict_baseline", size, 1, workers, strictRounds, strictWork, baseline))
		}
	}
	return out
}

// WriteTiesJSON runs TiesBench and writes the records as indented JSON (the
// BENCH_ties.json trajectory). n <= 0 selects the default size sweep.
func WriteTiesJSON(w io.Writer, seed int64, n int) error {
	records := TiesBench(seed, n)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
