package bench

import (
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/onesided"
	"repro/internal/par"
	"repro/popmatch"
)

// PoolRecord is one machine-readable benchmark measurement of the
// execution-context layer. The popbench -json output is a JSON array of
// these, giving future PRs a perf trajectory to diff against (ns/op and
// allocs/op of the persistent-pool Solver vs the one-shot path).
type PoolRecord struct {
	// Name identifies the workload: solver_reuse, one_shot or solve_batch.
	Name string `json:"name"`
	// N is the instance size (applicants); Batch the batch length (1 for
	// single-solve workloads).
	N     int `json:"n"`
	Batch int `json:"batch"`
	// Workers is the pool size the workload ran on.
	Workers int `json:"workers"`
	// Rounds/Work are the PRAM cost counters of one representative solve.
	Rounds int64 `json:"rounds"`
	Work   int64 `json:"work"`
	// Go benchmark results.
	Iterations  int   `json:"iterations"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// poolInstance builds the deterministic workload instance for size n.
func poolInstance(seed int64, n int) *onesided.Instance {
	rng := rand.New(rand.NewSource(seed))
	return onesided.Solvable(rng, n, n/4, 5)
}

// traceCosts runs one traced solve and reports its PRAM rounds and work.
func traceCosts(ins *popmatch.Instance, workers int) (int64, int64) {
	return traceRequestCosts(ins, workers, popmatch.Request{Mode: popmatch.ModePopular})
}

// traceRequestCosts runs one traced solve of the given request and reports
// its PRAM rounds and work, so every scenario's records carry truthful
// round/work accounting instead of zero placeholders.
func traceRequestCosts(ins *popmatch.Instance, workers int, req popmatch.Request) (int64, int64) {
	var st popmatch.Stats
	s := popmatch.NewSolver(popmatch.Options{Workers: workers, Trace: &st})
	defer s.Close()
	if _, err := s.SolveRequest(context.Background(), ins, req); err != nil {
		panic(err)
	}
	return st.Rounds(), st.Work()
}

// PoolBench measures the execution-context layer: repeated Solver.Solve on a
// persistent pool (pool + arena reuse), the one-shot compatibility path, and
// SolveBatch pipelining, across instance sizes and worker counts.
func PoolBench(seed int64) []PoolRecord {
	var out []PoolRecord
	workersSet := []int{1, runtime.GOMAXPROCS(0)}
	if workersSet[1] == 1 {
		workersSet = workersSet[:1]
	}
	for _, n := range []int{500, 2000, 8000} {
		ins := poolInstance(seed, n)
		for _, workers := range workersSet {
			rounds, work := traceCosts(ins, workers)

			s := popmatch.NewSolver(popmatch.Options{Workers: workers})
			reuse := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				ctx := context.Background()
				for i := 0; i < b.N; i++ {
					if _, err := s.Solve(ctx, ins); err != nil {
						b.Fatal(err)
					}
				}
			})
			s.Close()
			out = append(out, record("solver_reuse", n, 1, workers, rounds, work, reuse))

			oneShot := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := popmatch.Solve(ins, popmatch.Options{Workers: workers}); err != nil {
						b.Fatal(err)
					}
				}
			})
			out = append(out, record("one_shot", n, 1, workers, rounds, work, oneShot))
		}
	}

	// Batch pipelining over the shared pool.
	const batchLen = 16
	rng := rand.New(rand.NewSource(seed + 1))
	instances := make([]*popmatch.Instance, batchLen)
	for i := range instances {
		instances[i] = onesided.Solvable(rng, 1000, 100, 4)
	}
	s := popmatch.NewSolver(popmatch.Options{})
	batch := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if _, err := s.SolveBatch(ctx, instances); err != nil {
				b.Fatal(err)
			}
		}
	})
	s.Close()
	rounds, work := traceCosts(instances[0], 0)
	out = append(out, record("solve_batch", 1000, batchLen, par.Shared().Workers(), rounds, work, batch))
	return out
}

func record(name string, n, batch, workers int, rounds, work int64, r testing.BenchmarkResult) PoolRecord {
	return PoolRecord{
		Name:        name,
		N:           n,
		Batch:       batch,
		Workers:     workers,
		Rounds:      rounds,
		Work:        work,
		Iterations:  r.N,
		NsPerOp:     r.NsPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// WritePoolJSON runs PoolBench and writes the records as indented JSON.
func WritePoolJSON(w io.Writer, seed int64) error {
	records := PoolBench(seed)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
