package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/onesided"
	"repro/popmatch"
)

// DefaultDeltaN is the applicant count of the `delta` scenario: the same
// n = 10^5 family as the large scenario, where a full re-solve costs ~10^8 ns
// and the warm incremental path is accountable to a >= 5x speedup on a
// single-row edit.
const DefaultDeltaN = 100000

// DeltaRecord is one machine-readable measurement of the incremental
// (delta) solve path. The trajectory file BENCH_delta.json is an array of
// these.
type DeltaRecord struct {
	// Name identifies the workload: delta_full_resolve (edit + full solve,
	// the baseline), delta_warm_solve (edit + warm incremental solve) or
	// delta_cache_hit (re-query with no edit).
	Name    string `json:"name"`
	N       int    `json:"n"`
	Workers int    `json:"workers"`
	// Go benchmark results.
	Iterations  int   `json:"iterations"`
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	// Warm-path telemetry over an untimed probe run (delta_warm_solve only):
	// the fraction of edits served warm, and the mean dirty-region sizes.
	WarmFraction    float64 `json:"warm_fraction,omitempty"`
	MeanChangedRows float64 `json:"mean_changed_rows,omitempty"`
	MeanSubPosts    float64 `json:"mean_sub_posts,omitempty"`
	// SpeedupVsFull = full ns/op divided by this workload's ns/op
	// (delta_warm_solve and delta_cache_hit).
	SpeedupVsFull float64 `json:"speedup_vs_full,omitempty"`
	// Identical reports the differential check: the same edit sequence
	// solved warm and fresh produced bit-identical matchings.
	Identical bool `json:"identical"`
}

// deltaEditor generates an endless stream of valid single-row edits on the
// Solvable family: each edit rewrites one applicant's list to {own post,
// three distinct random seconds from the surplus pool}, preserving the
// family's unique-first-choice shape so the instance stays well-formed for
// unbounded b.N.
type deltaEditor struct {
	rng   *rand.Rand
	n     int
	extra int
	row   []int32
}

func newDeltaEditor(seed int64, n int) *deltaEditor {
	return &deltaEditor{rng: rand.New(rand.NewSource(seed)), n: n, extra: n / 4, row: make([]int32, 0, 4)}
}

func (e *deltaEditor) apply(ins *onesided.Instance) error {
	a := e.rng.Intn(e.n)
	e.row = append(e.row[:0], int32(a))
	for len(e.row) < 4 {
		p := int32(e.n + e.rng.Intn(e.extra))
		dup := false
		for _, q := range e.row {
			if q == p {
				dup = true
				break
			}
		}
		if !dup {
			e.row = append(e.row, p)
		}
	}
	return ins.SetPreferences(a, e.row, nil)
}

// DeltaBench measures incremental re-matching after single-row edits at size
// n against the full re-solve baseline, on one persistent Solver. Every
// workload patches the cached CSR in place through the mutation API, so the
// comparison isolates solve cost: full peeling of the whole instance vs
// warm re-peeling of the affected components only.
func DeltaBench(seed int64, n int) ([]DeltaRecord, error) {
	if n <= 0 {
		n = DefaultDeltaN
	}
	workers := runtime.GOMAXPROCS(0)
	base := largeInstance(seed, n)
	ctx := context.Background()
	s := popmatch.NewSolver(popmatch.Options{Workers: workers})
	defer s.Close()
	req := popmatch.Request{Mode: popmatch.ModePopular}

	// Differential check first: the same edit sequence, solved warm on one
	// clone and fresh on another, must match bit for bit.
	identical := true
	{
		warmIns, freshIns := base.Clone(), base.Clone()
		edW, edF := newDeltaEditor(seed+7, n), newDeltaEditor(seed+7, n)
		var sess popmatch.DeltaSession
		var wres popmatch.Result
		for i := 0; i < 20 && identical; i++ {
			if err := edW.apply(warmIns); err != nil {
				return nil, err
			}
			if err := edF.apply(freshIns); err != nil {
				return nil, err
			}
			if err := s.SolveDeltaInto(ctx, warmIns, req, &sess, &wres); err != nil {
				return nil, err
			}
			fres, err := s.Solve(ctx, freshIns)
			if err != nil {
				return nil, err
			}
			if wres.Exists != fres.Exists || wres.Exists && !wres.Matching.Equal(fres.Matching) {
				identical = false
			}
		}
	}

	// Baseline: edit + full re-solve.
	fullIns := base.Clone()
	edFull := newDeltaEditor(seed+1, n)
	var fullRes popmatch.Result
	full := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := edFull.apply(fullIns); err != nil {
				b.Fatal(err)
			}
			if err := s.SolveInto(ctx, fullIns, &fullRes); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Warm path: edit + delta solve, primed so the timed region is
	// steady-state (the first call is a full capture).
	warmIns := base.Clone()
	edWarm := newDeltaEditor(seed+1, n)
	var sess popmatch.DeltaSession
	var warmRes popmatch.Result
	if err := s.SolveDeltaInto(ctx, warmIns, req, &sess, &warmRes); err != nil {
		return nil, err
	}
	warm := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := edWarm.apply(warmIns); err != nil {
				b.Fatal(err)
			}
			if err := s.SolveDeltaInto(ctx, warmIns, req, &sess, &warmRes); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Untimed probe for warm-path telemetry.
	const probes = 200
	var warmHits, changed, subPosts int
	for i := 0; i < probes; i++ {
		if err := edWarm.apply(warmIns); err != nil {
			return nil, err
		}
		if err := s.SolveDeltaInto(ctx, warmIns, req, &sess, &warmRes); err != nil {
			return nil, err
		}
		st := sess.Stats()
		if st.Warm {
			warmHits++
			changed += st.ChangedRows
			subPosts += st.SubPosts
		}
	}

	// Re-query with no intervening edit: the retained matching is returned
	// without solving.
	cache := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.SolveDeltaInto(ctx, warmIns, req, &sess, &warmRes); err != nil {
				b.Fatal(err)
			}
		}
	})

	ratio := func(r testing.BenchmarkResult) float64 {
		if r.NsPerOp() == 0 {
			return 0
		}
		return float64(full.NsPerOp()) / float64(r.NsPerOp())
	}
	deltaRecord := func(name string, r testing.BenchmarkResult) DeltaRecord {
		return DeltaRecord{
			Name: name, N: n, Workers: workers,
			Iterations: r.N, NsPerOp: r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
			Identical: identical,
		}
	}
	fullRec := deltaRecord("delta_full_resolve", full)
	warmRec := deltaRecord("delta_warm_solve", warm)
	warmRec.SpeedupVsFull = ratio(warm)
	if warmHits > 0 {
		warmRec.WarmFraction = float64(warmHits) / probes
		warmRec.MeanChangedRows = float64(changed) / float64(warmHits)
		warmRec.MeanSubPosts = float64(subPosts) / float64(warmHits)
	}
	cacheRec := deltaRecord("delta_cache_hit", cache)
	cacheRec.SpeedupVsFull = ratio(cache)
	return []DeltaRecord{fullRec, warmRec, cacheRec}, nil
}

// WriteDeltaJSON runs DeltaBench and writes the records as indented JSON
// (the BENCH_delta.json trajectory). n <= 0 selects DefaultDeltaN.
func WriteDeltaJSON(w io.Writer, seed int64, n int) error {
	records, err := DeltaBench(seed, n)
	if err != nil {
		return fmt.Errorf("bench: delta scenario: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(records)
}
