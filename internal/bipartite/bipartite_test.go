package bipartite

import (
	"math/rand"
	"testing"
)

// bruteMaxMatching enumerates all matchings (small graphs only).
func bruteMaxMatching(g *Graph) int {
	usedR := make([]bool, g.NRight)
	var rec func(l int) int
	rec = func(l int) int {
		if l == g.NLeft {
			return 0
		}
		best := rec(l + 1) // leave l unmatched
		for _, r := range g.Adj[l] {
			if !usedR[r] {
				usedR[r] = true
				if got := 1 + rec(l+1); got > best {
					best = got
				}
				usedR[r] = false
			}
		}
		return best
	}
	return rec(0)
}

func randomGraph(rng *rand.Rand, nl, nr int, density float64) *Graph {
	g := New(nl, nr)
	for l := 0; l < nl; l++ {
		for r := 0; r < nr; r++ {
			if rng.Float64() < density {
				g.AddEdge(int32(l), int32(r))
			}
		}
	}
	return g
}

func checkMatching(t *testing.T, g *Graph, matchL, matchR []int32, size int) {
	t.Helper()
	got := 0
	for l := 0; l < g.NLeft; l++ {
		r := matchL[l]
		if r == -1 {
			continue
		}
		got++
		if matchR[r] != int32(l) {
			t.Fatalf("inverse mismatch at l=%d r=%d", l, r)
		}
		found := false
		for _, rr := range g.Adj[l] {
			if rr == r {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("matched pair (%d,%d) is not an edge", l, r)
		}
	}
	if got != size {
		t.Fatalf("size = %d but %d pairs matched", size, got)
	}
}

func TestHopcroftKarpKnown(t *testing.T) {
	// The greedy warm start pairs (0,0); reaching size 3 requires the
	// augmenting path 1 -> 0 -> 0 -> 1 -> 2 -> 2.
	g := New(3, 3)
	g.AddEdge(0, 0)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(2, 1)
	g.AddEdge(2, 2)
	matchL, matchR, size := HopcroftKarp(g)
	checkMatching(t, g, matchL, matchR, size)
	if size != 3 {
		t.Fatalf("size = %d, want 3", size)
	}
}

func TestHopcroftKarpAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 150; trial++ {
		g := randomGraph(rng, 1+rng.Intn(7), 1+rng.Intn(7), 0.4)
		matchL, matchR, size := HopcroftKarp(g)
		checkMatching(t, g, matchL, matchR, size)
		if want := bruteMaxMatching(g); size != want {
			t.Fatalf("size = %d, want %d", size, want)
		}
	}
}

func TestHopcroftKarpEmptyAndDisconnected(t *testing.T) {
	g := New(3, 2)
	_, _, size := HopcroftKarp(g)
	if size != 0 {
		t.Fatalf("edgeless graph matched %d", size)
	}
	g.AddEdge(1, 1)
	matchL, matchR, size := HopcroftKarp(g)
	checkMatching(t, g, matchL, matchR, size)
	if size != 1 {
		t.Fatalf("size = %d, want 1", size)
	}
}

func TestHopcroftKarpPerfectOnLarge(t *testing.T) {
	// A permutation plus noise always admits a perfect matching.
	rng := rand.New(rand.NewSource(72))
	n := 500
	g := New(n, n)
	perm := rng.Perm(n)
	for l := 0; l < n; l++ {
		g.AddEdge(int32(l), int32(perm[l]))
		for k := 0; k < 3; k++ {
			g.AddEdge(int32(l), int32(rng.Intn(n)))
		}
	}
	_, _, size := HopcroftKarp(g)
	if size != n {
		t.Fatalf("size = %d, want %d", size, n)
	}
}

// refEOU labels by explicit alternating-path search from every unmatched
// vertex (exponential-free: BFS per source over the alternation levels).
func refEOU(g *Graph, matchL, matchR []int32) (left, right []Label) {
	left = make([]Label, g.NLeft)
	right = make([]Label, g.NRight)
	radj := make([][]int32, g.NRight)
	for l, outs := range g.Adj {
		for _, r := range outs {
			radj[r] = append(radj[r], int32(l))
		}
	}
	// evenL/oddL track reachability at each parity; grow to fixpoint.
	evenL := make([]bool, g.NLeft)
	oddL := make([]bool, g.NLeft)
	evenR := make([]bool, g.NRight)
	oddR := make([]bool, g.NRight)
	for l := range evenL {
		if matchL[l] == -1 {
			evenL[l] = true
		}
	}
	for r := range evenR {
		if matchR[r] == -1 {
			evenR[r] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for l := 0; l < g.NLeft; l++ {
			if evenL[l] {
				for _, r := range g.Adj[l] {
					if matchL[l] != r && !oddR[r] {
						oddR[r] = true
						changed = true
					}
				}
			}
			if oddL[l] && matchL[l] != -1 && !evenR[matchL[l]] {
				evenR[matchL[l]] = true
				changed = true
			}
		}
		for r := 0; r < g.NRight; r++ {
			if evenR[r] {
				for _, l := range radj[r] {
					if matchR[r] != l && !oddL[l] {
						oddL[l] = true
						changed = true
					}
				}
			}
			if oddR[r] && matchR[r] != -1 && !evenL[matchR[r]] {
				evenL[matchR[r]] = true
				changed = true
			}
		}
	}
	for l := range left {
		switch {
		case evenL[l]:
			left[l] = Even
		case oddL[l]:
			left[l] = Odd
		}
	}
	for r := range right {
		switch {
		case evenR[r]:
			right[r] = Even
		case oddR[r]:
			right[r] = Odd
		}
	}
	return left, right
}

func TestEOUAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 150; trial++ {
		g := randomGraph(rng, 1+rng.Intn(10), 1+rng.Intn(10), 0.35)
		matchL, matchR, _ := HopcroftKarp(g)
		gotL, gotR := EOU(g, matchL, matchR)
		wantL, wantR := refEOU(g, matchL, matchR)
		for l := range gotL {
			if gotL[l] != wantL[l] {
				t.Fatalf("left %d: got %v, want %v", l, gotL[l], wantL[l])
			}
		}
		for r := range gotR {
			if gotR[r] != wantR[r] {
				t.Fatalf("right %d: got %v, want %v", r, gotR[r], wantR[r])
			}
		}
	}
}

func TestEOUStarShape(t *testing.T) {
	// Star: one post, three applicants — the strict-case f-post structure.
	g := New(3, 1)
	for l := 0; l < 3; l++ {
		g.AddEdge(int32(l), 0)
	}
	matchL, matchR, _ := HopcroftKarp(g)
	left, right := EOU(g, matchL, matchR)
	if right[0] != Odd {
		t.Fatalf("star center = %v, want odd", right[0])
	}
	for l := 0; l < 3; l++ {
		if left[l] != Even {
			t.Fatalf("star leaf %d = %v, want even", l, left[l])
		}
	}
}

func TestEOUSingleEdgeUnreachable(t *testing.T) {
	// A matched pair with no alternatives: both unreachable.
	g := New(1, 1)
	g.AddEdge(0, 0)
	matchL, matchR, _ := HopcroftKarp(g)
	left, right := EOU(g, matchL, matchR)
	if left[0] != Unreachable || right[0] != Unreachable {
		t.Fatalf("labels = %v/%v, want unreachable", left[0], right[0])
	}
}

func TestEOUNoVertexBothParities(t *testing.T) {
	// With a maximum matching the decomposition is a partition; the
	// reference's parity sets must never overlap.
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 80; trial++ {
		g := randomGraph(rng, 1+rng.Intn(9), 1+rng.Intn(9), 0.4)
		matchL, matchR, _ := HopcroftKarp(g)
		radj := make([][]int32, g.NRight)
		for l, outs := range g.Adj {
			for _, r := range outs {
				radj[r] = append(radj[r], int32(l))
			}
		}
		left, right := EOU(g, matchL, matchR)
		// Structural consequences of maximality (see §V discussion):
		// no edge joins two Even vertices.
		for l, outs := range g.Adj {
			for _, r := range outs {
				if left[l] == Even && right[r] == Even {
					t.Fatalf("even-even edge (%d,%d) under a maximum matching", l, r)
				}
			}
		}
	}
}

func TestLabelString(t *testing.T) {
	if Even.String() != "even" || Odd.String() != "odd" || Unreachable.String() != "unreachable" {
		t.Fatal("Label.String mismatch")
	}
}

func BenchmarkHopcroftKarp(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	g := randomGraph(rng, 2000, 2000, 0.002)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarp(g)
	}
}
