// Package bipartite provides maximum-cardinality bipartite matching
// (Hopcroft–Karp) and the even/odd/unreachable (Gallai–Edmonds) vertex
// decomposition relative to a maximum matching.
//
// These are the substrate for §V of the paper: the popular matching problem
// with ties needs a maximum matching of the rank-one graph G1 and the EOU
// labels of its vertices (Abraham–Irving–Kavitha–Mehlhorn), and Theorem 11's
// reduction is differentially tested against Hopcroft–Karp.
package bipartite

import "repro/internal/exec"

// Graph is a bipartite graph with NLeft left vertices and NRight right
// vertices; Adj[l] lists the right neighbors of left vertex l.
type Graph struct {
	NLeft, NRight int
	Adj           [][]int32
}

// New returns an empty bipartite graph of the given dimensions.
func New(nLeft, nRight int) *Graph {
	return &Graph{NLeft: nLeft, NRight: nRight, Adj: make([][]int32, nLeft)}
}

// AddEdge adds the edge (l, r). Duplicate edges are allowed and harmless.
func (g *Graph) AddEdge(l, r int32) {
	g.Adj[l] = append(g.Adj[l], r)
}

// NumEdges returns the number of stored edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n
}

const inf = int32(1) << 30

// HopcroftKarp computes a maximum-cardinality matching. matchL[l] is the
// right partner of l or -1; matchR is the inverse. It runs in O(E sqrt(V)).
func HopcroftKarp(g *Graph) (matchL, matchR []int32, size int) {
	return HopcroftKarpCtx(nil, g)
}

// HopcroftKarpCtx is HopcroftKarp on an execution context: cancellation is
// checked at every BFS/DFS phase boundary (there are O(sqrt(V)) phases) and
// each phase is accounted as one round of O(E) work in the tracer. A nil cx
// behaves like HopcroftKarp.
func HopcroftKarpCtx(cx *exec.Ctx, g *Graph) (matchL, matchR []int32, size int) {
	matchL = make([]int32, g.NLeft)
	matchR = make([]int32, g.NRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	// Greedy warm start.
	for l := 0; l < g.NLeft; l++ {
		for _, r := range g.Adj[l] {
			if matchR[r] == -1 {
				matchL[l] = r
				matchR[r] = int32(l)
				size++
				break
			}
		}
	}
	dist := make([]int32, g.NLeft)
	queue := make([]int32, 0, g.NLeft)
	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < g.NLeft; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, int32(l))
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range g.Adj[l] {
				nl := matchR[r]
				if nl == -1 {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}
	var dfs func(l int32) bool
	dfs = func(l int32) bool {
		for _, r := range g.Adj[l] {
			nl := matchR[r]
			if nl == -1 || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = int32(l)
				return true
			}
		}
		dist[l] = inf
		return false
	}
	for {
		if cx != nil {
			cx.Check()
			cx.Round(g.NumEdges())
		}
		if !bfs() {
			break
		}
		for l := 0; l < g.NLeft; l++ {
			if matchL[l] == -1 && dfs(int32(l)) {
				size++
			}
		}
	}
	return matchL, matchR, size
}

// Label classifies a vertex relative to a maximum matching.
type Label uint8

const (
	// Unreachable vertices are on no alternating path from any unmatched
	// vertex.
	Unreachable Label = iota
	// Even vertices are reachable by an even-length alternating path from an
	// unmatched vertex (unmatched vertices themselves are Even).
	Even
	// Odd vertices are reachable by an odd-length alternating path.
	Odd
)

func (l Label) String() string {
	switch l {
	case Even:
		return "even"
	case Odd:
		return "odd"
	default:
		return "unreachable"
	}
}

// EOU computes the even/odd/unreachable decomposition of g relative to the
// maximum matching (matchL, matchR). The decomposition is well defined —
// no vertex is reachable at both parities — precisely because the matching
// is maximum; callers must pass one.
//
// Alternating BFS runs from every unmatched vertex on both sides: from an
// unmatched vertex the first step uses a non-matching edge, and steps
// alternate thereafter.
func EOU(g *Graph, matchL, matchR []int32) (left, right []Label) {
	left = make([]Label, g.NLeft)
	right = make([]Label, g.NRight)
	// Build reverse adjacency once for right-to-left traversal.
	radj := make([][]int32, g.NRight)
	for l, outs := range g.Adj {
		for _, r := range outs {
			radj[r] = append(radj[r], int32(l))
		}
	}

	type node struct {
		isLeft bool
		v      int32
	}
	var queue []node
	for l := 0; l < g.NLeft; l++ {
		if matchL[l] == -1 {
			left[l] = Even
			queue = append(queue, node{true, int32(l)})
		}
	}
	for r := 0; r < g.NRight; r++ {
		if matchR[r] == -1 {
			right[r] = Even
			queue = append(queue, node{false, int32(r)})
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if cur.isLeft {
			l := cur.v
			if left[l] == Even {
				// Non-matching edges lead to Odd right vertices.
				for _, r := range g.Adj[l] {
					if r == matchL[l] || right[r] != Unreachable {
						continue
					}
					right[r] = Odd
					queue = append(queue, node{false, r})
				}
			} else {
				// Odd left vertex continues through its matching edge.
				if r := matchL[l]; r != -1 && right[r] == Unreachable {
					right[r] = Even
					queue = append(queue, node{false, r})
				}
			}
		} else {
			r := cur.v
			if right[r] == Even {
				for _, l := range radj[r] {
					if l == matchR[r] || left[l] != Unreachable {
						continue
					}
					left[l] = Odd
					queue = append(queue, node{true, l})
				}
			} else {
				if l := matchR[r]; l != -1 && left[l] == Unreachable {
					left[l] = Even
					queue = append(queue, node{true, l})
				}
			}
		}
	}
	return left, right
}
