package bipartite

import "repro/internal/exec"

// Builder assembles a Graph whose adjacency lists are sub-slices of one flat
// backing array, both recycled across builds: a solver that rebuilds a
// same-shaped graph every solve (the §V ties path builds the rank-one graph
// G1 per call) reaches a zero-allocation steady state after the first build.
//
// Rows are appended in left-vertex order: Reset, then for each left vertex
// in increasing order StartRow followed by Add per right neighbor. Graph
// slices the rows out of the flat array; the returned graph aliases the
// Builder's storage and is valid only until the next Reset.
type Builder struct {
	g    Graph
	off  []int32 // row boundaries into flat; len NLeft+1
	flat []int32
	next int // rows started so far
}

// Reset empties the builder for an nLeft × nRight graph.
func (b *Builder) Reset(nLeft, nRight int) {
	b.g.NLeft, b.g.NRight = nLeft, nRight
	b.g.Adj = exec.Grow(&b.g.Adj, nLeft)
	b.off = exec.Grow(&b.off, nLeft+1)
	b.flat = b.flat[:0]
	b.next = 0
}

// StartRow begins the adjacency row of the next left vertex (rows are
// implicit, in increasing order starting at 0).
func (b *Builder) StartRow() {
	b.off[b.next] = int32(len(b.flat))
	b.next++
}

// Add appends right neighbor r to the current row.
func (b *Builder) Add(r int32) { b.flat = append(b.flat, r) }

// Graph finalizes and returns the built graph. Every row must have been
// started (NLeft calls to StartRow). The graph aliases the builder's
// storage: it is invalidated by the next Reset.
func (b *Builder) Graph() *Graph {
	if b.next != b.g.NLeft {
		panic("bipartite: Builder.Graph before every row was started")
	}
	b.off[b.g.NLeft] = int32(len(b.flat))
	for l := 0; l < b.g.NLeft; l++ {
		b.g.Adj[l] = b.flat[b.off[l]:b.off[l+1]]
	}
	return &b.g
}

// Scratch recycles the working and result arrays of HopcroftKarpScratch and
// EOUScratch across calls. The zero value is ready to use; a Scratch must
// not be shared by concurrent calls. Returned slices (matchings, labels)
// alias the Scratch and are valid only until its next use.
type Scratch struct {
	matchL, matchR []int32
	dist, queue    []int32

	left, right []Label
	radjHeads   [][]int32
	radjFlat    []int32
	radjOff     []int32
	nodeQueue   []eouNode
}

// HopcroftKarpScratch is HopcroftKarpCtx with every working array (and the
// returned matchL/matchR) drawn from the Scratch. Results are bit-identical
// to HopcroftKarpCtx; the returned slices are owned by the Scratch.
func (s *Scratch) HopcroftKarpScratch(cx *exec.Ctx, g *Graph) (matchL, matchR []int32, size int) {
	matchL = exec.Grow(&s.matchL, g.NLeft)
	matchR = exec.Grow(&s.matchR, g.NRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	// Greedy warm start.
	for l := 0; l < g.NLeft; l++ {
		for _, r := range g.Adj[l] {
			if matchR[r] == -1 {
				matchL[l] = r
				matchR[r] = int32(l)
				size++
				break
			}
		}
	}
	dist := exec.Grow(&s.dist, g.NLeft)
	queue := exec.Grow(&s.queue, g.NLeft)[:0]
	bfs := func() bool {
		queue = queue[:0]
		for l := 0; l < g.NLeft; l++ {
			if matchL[l] == -1 {
				dist[l] = 0
				queue = append(queue, int32(l))
			} else {
				dist[l] = inf
			}
		}
		found := false
		for qi := 0; qi < len(queue); qi++ {
			l := queue[qi]
			for _, r := range g.Adj[l] {
				nl := matchR[r]
				if nl == -1 {
					found = true
				} else if dist[nl] == inf {
					dist[nl] = dist[l] + 1
					queue = append(queue, nl)
				}
			}
		}
		return found
	}
	var dfs func(l int32) bool
	dfs = func(l int32) bool {
		for _, r := range g.Adj[l] {
			nl := matchR[r]
			if nl == -1 || (dist[nl] == dist[l]+1 && dfs(nl)) {
				matchL[l] = r
				matchR[r] = int32(l)
				return true
			}
		}
		dist[l] = inf
		return false
	}
	for {
		if cx != nil {
			cx.Check()
			cx.Round(g.NumEdges())
		}
		if !bfs() {
			break
		}
		for l := 0; l < g.NLeft; l++ {
			if matchL[l] == -1 && dfs(int32(l)) {
				size++
			}
		}
	}
	s.queue = queue[:0]
	return matchL, matchR, size
}

type eouNode struct {
	isLeft bool
	v      int32
}

// EOUScratch is EOU with the reverse adjacency, labels and BFS queue drawn
// from the Scratch. The decomposition is unique for a maximum matching, so
// the labels equal EOU's; the returned slices are owned by the Scratch.
func (s *Scratch) EOUScratch(g *Graph, matchL, matchR []int32) (left, right []Label) {
	left, right = exec.Grow(&s.left, g.NLeft), exec.Grow(&s.right, g.NRight)
	clear(left)
	clear(right)

	// Reverse adjacency as a counting-sort CSR over the recycled flat array
	// (entry order per right vertex matches the append-based build: left ids
	// increase).
	radjOff := exec.Grow(&s.radjOff, g.NRight+1)
	clear(radjOff)
	edges := 0
	for _, outs := range g.Adj {
		edges += len(outs)
		for _, r := range outs {
			radjOff[r+1]++
		}
	}
	for r := 0; r < g.NRight; r++ {
		radjOff[r+1] += radjOff[r]
	}
	radjFlat := exec.Grow(&s.radjFlat, edges)
	radj := exec.Grow(&s.radjHeads, g.NRight)
	cursor := exec.Grow(&s.dist, g.NRight) // reuse dist as scatter cursors
	copy(cursor, radjOff[:g.NRight])
	for l, outs := range g.Adj {
		for _, r := range outs {
			radjFlat[cursor[r]] = int32(l)
			cursor[r]++
		}
	}
	for r := 0; r < g.NRight; r++ {
		radj[r] = radjFlat[radjOff[r]:radjOff[r+1]]
	}

	queue := s.nodeQueue[:0]
	for l := 0; l < g.NLeft; l++ {
		if matchL[l] == -1 {
			left[l] = Even
			queue = append(queue, eouNode{true, int32(l)})
		}
	}
	for r := 0; r < g.NRight; r++ {
		if matchR[r] == -1 {
			right[r] = Even
			queue = append(queue, eouNode{false, int32(r)})
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		if cur.isLeft {
			l := cur.v
			if left[l] == Even {
				for _, r := range g.Adj[l] {
					if r == matchL[l] || right[r] != Unreachable {
						continue
					}
					right[r] = Odd
					queue = append(queue, eouNode{false, r})
				}
			} else {
				if r := matchL[l]; r != -1 && right[r] == Unreachable {
					right[r] = Even
					queue = append(queue, eouNode{false, r})
				}
			}
		} else {
			r := cur.v
			if right[r] == Even {
				for _, l := range radj[r] {
					if l == matchR[r] || left[l] != Unreachable {
						continue
					}
					left[l] = Odd
					queue = append(queue, eouNode{true, l})
				}
			} else {
				if l := matchR[r]; l != -1 && left[l] == Unreachable {
					left[l] = Even
					queue = append(queue, eouNode{true, l})
				}
			}
		}
	}
	s.nodeQueue = queue[:0]
	return left, right
}
