package gf2

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/par"
)

func TestQuickRankBounds(t *testing.T) {
	p := par.NewPool(0)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(50), 1+rng.Intn(50)
		m := randomMatrix(rng, r, c, 0.3)
		rk := Rank(p, m)
		lim := r
		if c < r {
			lim = c
		}
		return rk >= 0 && rk <= lim
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRankRowOpsInvariant(t *testing.T) {
	// Adding one row to another over GF(2) preserves rank.
	p := par.NewPool(0)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 2+rng.Intn(30), 1+rng.Intn(30)
		m := randomMatrix(rng, r, c, 0.3)
		before := Rank(p, m)
		i, j := rng.Intn(r), rng.Intn(r)
		if i == j {
			j = (j + 1) % r
		}
		mm := m.Clone()
		ri, rj := mm.row(i), mm.row(j)
		for w := range ri {
			ri[w] ^= rj[w]
		}
		return Rank(p, mm) == before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRankDuplicateRowInvariant(t *testing.T) {
	// Appending a copy of an existing row never changes the rank.
	p := par.NewPool(0)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(30), 1+rng.Intn(30)
		m := randomMatrix(rng, r, c, 0.3)
		grown := New(r+1, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				grown.Set(i, j, m.Get(i, j))
			}
		}
		src := rng.Intn(r)
		for j := 0; j < c; j++ {
			grown.Set(r, j, m.Get(src, j))
		}
		return Rank(p, grown) == Rank(p, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIncidenceParallelEdgeInvariant(t *testing.T) {
	// Duplicating an edge of a multigraph leaves rank (= n − cc) unchanged.
	p := par.NewPool(0)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		mEdges := 1 + rng.Intn(2*n)
		edges := make([][2]int, 0, mEdges)
		for len(edges) < mEdges {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, [2]int{u, v})
			}
		}
		base := Rank(p, Incidence(n, edges))
		dup := append(append([][2]int{}, edges...), edges[rng.Intn(len(edges))])
		return Rank(p, Incidence(n, dup)) == base
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
