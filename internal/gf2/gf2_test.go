package gf2

import (
	"math/rand"
	"testing"

	"repro/internal/par"
)

// naiveRank is an independent, straightforward elimination over a [][]bool
// copy, used as the reference implementation.
func naiveRank(m *Matrix) int {
	a := make([][]bool, m.Rows)
	for i := range a {
		a[i] = make([]bool, m.Cols)
		for j := 0; j < m.Cols; j++ {
			a[i][j] = m.Get(i, j)
		}
	}
	rank := 0
	for col := 0; col < m.Cols && rank < m.Rows; col++ {
		pivot := -1
		for i := rank; i < m.Rows; i++ {
			if a[i][col] {
				pivot = i
				break
			}
		}
		if pivot == -1 {
			continue
		}
		a[pivot], a[rank] = a[rank], a[pivot]
		for i := 0; i < m.Rows; i++ {
			if i != rank && a[i][col] {
				for j := 0; j < m.Cols; j++ {
					a[i][j] = a[i][j] != a[rank][j]
				}
			}
		}
		rank++
	}
	return rank
}

func randomMatrix(rng *rand.Rand, r, c int, density float64) *Matrix {
	m := New(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				m.Set(i, j, true)
			}
		}
	}
	return m
}

// bfsComponents counts connected components of a multigraph.
func bfsComponents(n int, edges [][2]int) int {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	seen := make([]bool, n)
	cc := 0
	for s := 0; s < n; s++ {
		if seen[s] {
			continue
		}
		cc++
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range adj[v] {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return cc
}

func TestSetGetFlip(t *testing.T) {
	m := New(3, 130)
	m.Set(2, 129, true)
	if !m.Get(2, 129) {
		t.Fatal("Set/Get at word boundary failed")
	}
	m.Flip(2, 129)
	if m.Get(2, 129) {
		t.Fatal("Flip did not clear")
	}
	m.Flip(0, 0)
	if !m.Get(0, 0) {
		t.Fatal("Flip did not set")
	}
}

func TestRankAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, p := range []*par.Pool{par.Sequential(), par.NewPool(0)} {
		for trial := 0; trial < 25; trial++ {
			r := 1 + rng.Intn(60)
			c := 1 + rng.Intn(60)
			m := randomMatrix(rng, r, c, 0.3)
			got := Rank(p, m)
			want := naiveRank(m)
			if got != want {
				t.Fatalf("workers=%d %dx%d: Rank = %d, want %d", p.Workers(), r, c, got, want)
			}
		}
	}
}

func TestRankDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	m := randomMatrix(rng, 20, 20, 0.4)
	before := m.Clone()
	Rank(par.NewPool(4), m)
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if m.Get(i, j) != before.Get(i, j) {
				t.Fatal("Rank modified its input")
			}
		}
	}
}

func TestRankSpecialCases(t *testing.T) {
	p := par.NewPool(4)
	if got := Rank(p, New(5, 7)); got != 0 {
		t.Fatalf("rank(0) = %d, want 0", got)
	}
	id := New(6, 6)
	for i := 0; i < 6; i++ {
		id.Set(i, i, true)
	}
	if got := Rank(p, id); got != 6 {
		t.Fatalf("rank(I) = %d, want 6", got)
	}
	// Duplicated rows collapse.
	dup := New(4, 8)
	for j := 0; j < 8; j += 2 {
		dup.Set(0, j, true)
		dup.Set(1, j, true)
		dup.Set(2, j+1, true)
	}
	if got := Rank(p, dup); got != 2 {
		t.Fatalf("rank(dup rows) = %d, want 2", got)
	}
}

func TestRankTransposeInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := par.NewPool(0)
	for trial := 0; trial < 15; trial++ {
		m := randomMatrix(rng, 1+rng.Intn(40), 1+rng.Intn(40), 0.25)
		if Rank(p, m) != Rank(p, m.Transpose()) {
			t.Fatal("rank(A) != rank(A^T)")
		}
	}
}

// TestLemma6 checks the identity the paper's Lemma 6 relies on:
// rank of the incidence matrix of a graph with k components is n − k.
func TestLemma6IncidenceRank(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	p := par.NewPool(0)
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(50)
		mEdges := rng.Intn(2 * n)
		edges := make([][2]int, 0, mEdges)
		for len(edges) < mEdges {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				edges = append(edges, [2]int{u, v}) // parallel edges allowed
			}
		}
		inc := Incidence(n, edges)
		got := Rank(p, inc)
		want := n - bfsComponents(n, edges)
		if got != want {
			t.Fatalf("n=%d m=%d: rank = %d, want n-cc = %d", n, len(edges), got, want)
		}
	}
}

func TestIncidenceWithout(t *testing.T) {
	p := par.NewPool(4)
	// Triangle plus pendant: removing a cycle edge keeps cc; removing the
	// pendant edge increases cc.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}}
	full := Rank(p, Incidence(4, edges))
	if full != 4-1 {
		t.Fatalf("full rank = %d, want 3", full)
	}
	for e := 0; e < 3; e++ { // cycle edges
		if got := Rank(p, IncidenceWithout(4, edges, e)); got != full {
			t.Fatalf("removing cycle edge %d: rank = %d, want %d", e, got, full)
		}
	}
	if got := Rank(p, IncidenceWithout(4, edges, 3)); got != full-1 {
		t.Fatalf("removing bridge: rank = %d, want %d", got, full-1)
	}
}

func TestIncidenceSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Incidence with a self-loop did not panic")
		}
	}()
	Incidence(3, [][2]int{{1, 1}})
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	p := par.NewPool(4)
	a := randomMatrix(rng, 33, 33, 0.3)
	id := New(33, 33)
	for i := 0; i < 33; i++ {
		id.Set(i, i, true)
	}
	prod := Mul(p, a, id)
	for i := 0; i < 33; i++ {
		for j := 0; j < 33; j++ {
			if prod.Get(i, j) != a.Get(i, j) {
				t.Fatal("A·I != A over GF(2)")
			}
		}
	}
}

func TestMulRankSubmultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	p := par.NewPool(0)
	for trial := 0; trial < 10; trial++ {
		a := randomMatrix(rng, 20, 30, 0.3)
		b := randomMatrix(rng, 30, 25, 0.3)
		ra, rb := Rank(p, a), Rank(p, b)
		rab := Rank(p, Mul(p, a, b))
		if rab > ra || rab > rb {
			t.Fatalf("rank(AB)=%d exceeds min(rank A=%d, rank B=%d)", rab, ra, rb)
		}
	}
}

func BenchmarkRank512(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	p := par.NewPool(0)
	m := randomMatrix(rng, 512, 512, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Rank(p, m)
	}
}
