// Package gf2 implements bit-packed matrices over GF(2) with a row-parallel
// Gaussian-elimination rank, plus graph incidence matrices.
//
// It substitutes for Theorem 7 of the paper (Mulmuley's O(log² n)-time rank
// over an arbitrary field): Lemma 6 only needs the rank of the *unoriented
// incidence matrix*, and over GF(2) — where orientation is irrelevant — the
// identity rank(I_G) = n − #components holds for every multigraph. Gaussian
// elimination computes the same rank with polynomial work and row-parallel
// elimination steps; the depth is O(n) rather than O(log² n), which we
// document as a depth-relaxed stand-in (the O(log n)-depth route for the same
// cycle-detection job is the connected-components method, also implemented).
package gf2

import (
	"fmt"
	"math/bits"

	"repro/internal/par"
)

// Matrix is an r×c matrix over GF(2), rows packed 64 bits per word.
type Matrix struct {
	Rows, Cols int
	words      int
	bits       []uint64
}

// New returns the zero r×c matrix.
func New(r, c int) *Matrix {
	w := (c + 63) / 64
	return &Matrix{Rows: r, Cols: c, words: w, bits: make([]uint64, r*w)}
}

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v bool) {
	w := i*m.words + j/64
	mask := uint64(1) << (j % 64)
	if v {
		m.bits[w] |= mask
	} else {
		m.bits[w] &^= mask
	}
}

// Get reads entry (i, j).
func (m *Matrix) Get(i, j int) bool {
	return m.bits[i*m.words+j/64]&(1<<(j%64)) != 0
}

// Flip toggles entry (i, j).
func (m *Matrix) Flip(i, j int) {
	m.bits[i*m.words+j/64] ^= 1 << (j % 64)
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{Rows: m.Rows, Cols: m.Cols, words: m.words, bits: make([]uint64, len(m.bits))}
	copy(c.bits, m.bits)
	return c
}

// Transpose returns the c×r transpose.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.row(i)
		for wi, w := range row {
			for w != 0 {
				j := wi*64 + bits.TrailingZeros64(w)
				w &= w - 1
				t.Set(j, i, true)
			}
		}
	}
	return t
}

func (m *Matrix) row(i int) []uint64 {
	return m.bits[i*m.words : (i+1)*m.words]
}

// Rank computes the GF(2) rank of m by Gaussian elimination. m is not
// modified. Elimination of each pivot column across the remaining rows is one
// parallel round; there are at most min(r, c) pivots.
//
// The elimination round is chunked over contiguous row blocks sized by
// par.RowGrain, so each worker owns whole cache lines of the bit matrix, and
// the pivot column's word index and mask are hoisted out of the row sweep —
// the inner loop is a pure 64-bit-word XOR stream.
func Rank(x par.Runner, m *Matrix) int {
	a := m.Clone()
	rank := 0
	words := a.words
	rows := a.Rows
	grain := par.RowGrain(rows, words, x.Workers())
	for col := 0; col < a.Cols && rank < rows; col++ {
		cw, cmask := col/64, uint64(1)<<(col%64)
		// Find a pivot row at or below `rank` with a 1 in this column.
		pivot := -1
		for i := rank; i < rows; i++ {
			if a.bits[i*words+cw]&cmask != 0 {
				pivot = i
				break
			}
		}
		if pivot == -1 {
			continue
		}
		if pivot != rank {
			pr, rr := a.row(pivot), a.row(rank)
			for w := range pr {
				pr[w], rr[w] = rr[w], pr[w]
			}
		}
		prow := a.row(rank)
		rk := rank
		x.Range(rows, grain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if i == rk || a.bits[i*words+cw]&cmask == 0 {
					continue
				}
				ri := a.bits[i*words : i*words+words]
				for w := range ri {
					ri[w] ^= prow[w]
				}
			}
		})
		x.Round(rows * words)
		rank++
	}
	return rank
}

// Mul returns the GF(2) product a·b (XOR of ANDs). Rows of the product are
// partitioned into cache-line-aligned blocks (par.RowGrain); each worker
// accumulates its rows with word-parallel XOR sweeps and never touches a
// block another worker writes.
func Mul(x par.Runner, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("gf2: size mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	c := New(a.Rows, b.Cols)
	grain := par.RowGrain(a.Rows, c.words, x.Workers())
	x.Range(a.Rows, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst := c.row(i)
			src := a.row(i)
			for wi, w := range src {
				for w != 0 {
					k := wi*64 + bits.TrailingZeros64(w)
					w &= w - 1
					brow := b.row(k)
					for t := range dst {
						dst[t] ^= brow[t]
					}
				}
			}
		}
	})
	x.Round(a.Rows * c.words)
	return c
}

// Incidence returns the unoriented vertex-edge incidence matrix of a
// multigraph on n vertices: row per vertex, column per edge, with exactly the
// two endpoint bits of each edge set. Self-loops are rejected (their
// incidence column would be zero over GF(2)); the pseudoforests of the paper
// never contain them.
func Incidence(n int, edges [][2]int) *Matrix {
	m := New(n, len(edges))
	for j, e := range edges {
		if e[0] == e[1] {
			panic(fmt.Sprintf("gf2: self-loop at vertex %d has no GF(2) incidence column", e[0]))
		}
		m.Set(e[0], j, true)
		m.Set(e[1], j, true)
	}
	return m
}

// IncidenceWithout returns the incidence matrix of the multigraph with edge
// column `skip` removed — used by the Lemma 6 cycle test, which compares
// rank(I_G) with rank(I_{G−e}) for each edge e.
func IncidenceWithout(n int, edges [][2]int, skip int) *Matrix {
	m := New(n, len(edges)-1)
	col := 0
	for j, e := range edges {
		if j == skip {
			continue
		}
		m.Set(e[0], col, true)
		m.Set(e[1], col, true)
		col++
	}
	return m
}
