package exec

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/par"
)

func TestBackgroundRunsLoops(t *testing.T) {
	cx := Background()
	var sum atomic.Int64
	cx.For(1000, func(i int) { sum.Add(int64(i)) })
	if sum.Load() != 499500 {
		t.Fatalf("For sum = %d, want 499500", sum.Load())
	}
	if cx.Err() != nil {
		t.Fatalf("background ctx reports error %v", cx.Err())
	}
}

func TestCtxImplementsRunner(t *testing.T) {
	var _ par.Runner = Background()
}

func TestTracerAccounting(t *testing.T) {
	var tr par.Tracer
	cx := New(Config{Tracer: &tr})
	cx.For(10, func(int) {})
	cx.Round(10)
	cx.AddWork(5)
	if tr.Rounds() != 1 || tr.Work() != 15 {
		t.Fatalf("tracer recorded %s, want rounds=1 work=15", tr.String())
	}
}

func TestCancellationPanicsAndIsCaught(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cx := New(Config{Context: ctx})
	cancel()
	run := func() (err error) {
		defer CatchCancel(&err)
		cx.For(100, func(int) { t.Error("loop body ran after cancellation") })
		return nil
	}
	if err := run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCatchCancelPassesOtherPanics(t *testing.T) {
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	func() {
		var err error
		defer CatchCancel(&err)
		panic("boom")
	}()
}

func TestDeadlineSurfacesAsDeadlineExceeded(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(0, 1))
	defer cancel()
	cx := New(Config{Context: ctx})
	run := func() (err error) {
		defer CatchCancel(&err)
		cx.Range(10, 1, func(lo, hi int) {})
		return nil
	}
	if err := run(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestArenaReuse(t *testing.T) {
	ar := NewArena()
	cx := New(Config{Arena: ar})
	s1 := cx.Int32s(100)
	s1[0] = 42
	p1 := &s1[:1][0]
	cx.PutInt32s(s1)
	s2 := cx.Int32s(50)
	if &s2[:1][0] != p1 {
		t.Fatal("arena did not reuse the recycled buffer")
	}
	if s2[0] != 0 {
		t.Fatalf("recycled buffer not zeroed: s2[0] = %d", s2[0])
	}
	s3 := cx.Int32s(100) // arena empty again: fresh allocation
	if &s3[:1][0] == p1 {
		t.Fatal("arena handed out the same buffer twice concurrently")
	}
}

func TestArenaPrefersSmallestFit(t *testing.T) {
	ar := NewArena()
	cx := New(Config{Arena: ar})
	big := cx.Ints(1000)
	small := cx.Ints(10)
	cx.PutInts(big)
	cx.PutInts(small)
	got := cx.Ints(5)
	if cap(got) >= 1000 {
		t.Fatalf("asked for 5, got the big buffer (cap %d)", cap(got))
	}
}

func TestNilArenaAccessorsFallBackToMake(t *testing.T) {
	cx := Background()
	s := cx.Bools(10)
	if len(s) != 10 {
		t.Fatalf("len = %d, want 10", len(s))
	}
	cx.PutBools(s) // must not panic
	u := cx.Uint32s(3)
	cx.PutUint32s(u)
	a := cx.AtomicInt32s(4)
	cx.PutAtomicInt32s(a)
	i64 := cx.Int64s(2)
	cx.PutInt64s(i64)
}

func TestArenaResetReleasesBuffers(t *testing.T) {
	ar := NewArena()
	cx := New(Config{Arena: ar})
	s := cx.Ints(64)
	p := &s[:1][0]
	cx.PutInts(s)
	ar.Reset()
	s2 := cx.Ints(64)
	if &s2[:1][0] == p {
		t.Fatal("Reset kept a recycled buffer")
	}
}
