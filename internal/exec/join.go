package exec

import (
	"context"
	"sync/atomic"
	"time"
)

// JoinContext merges the lifetimes of several per-request contexts into one
// context suitable for a shared computation, such as a micro-batched solve
// serving multiple coalesced requests of the same instance.
//
// The returned context is cancelled when base is cancelled, when every
// member context is done, or when the returned CancelFunc runs — a shared
// solve keeps running while at least one requester is still waiting, and
// stops promptly once nobody is. Its Deadline is the latest member deadline
// (clipped by base's): the shared solve may run until the most patient
// requester would give up, and no longer. Members without a deadline leave
// the join without one, beyond base's.
//
// With no members the join degenerates to context.WithCancel(base). The
// caller must invoke the CancelFunc once the shared computation finishes, as
// with every derived context.
func JoinContext(base context.Context, members ...context.Context) (context.Context, context.CancelFunc) {
	if len(members) == 0 {
		return context.WithCancel(base)
	}
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if dl, ok := joinDeadline(members); ok {
		ctx, cancel = context.WithDeadline(base, dl)
	} else {
		ctx, cancel = context.WithCancel(base)
	}
	// Callback-based member tracking (context.AfterFunc): no goroutine per
	// member, which matters on the serving hot path where every micro-batch
	// group joins its waiters' contexts. When the last member finishes,
	// nobody is waiting for the shared result any more and the join cancels
	// itself; CancelFunc is idempotent, so racing the caller is fine.
	var remaining atomic.Int64
	remaining.Store(int64(len(members)))
	stops := make([]func() bool, len(members))
	for i, m := range members {
		stops[i] = context.AfterFunc(m, func() {
			if remaining.Add(-1) == 0 {
				cancel()
			}
		})
	}
	// Once the join itself ends (base cancelled, deadline hit, or the
	// caller's cancel), detach from any members still live.
	context.AfterFunc(ctx, func() {
		for _, stop := range stops {
			stop()
		}
	})
	return ctx, cancel
}

// joinDeadline reports the latest deadline over members, with ok=false when
// any member is deadline-free (the join then inherits only base's deadline).
func joinDeadline(members []context.Context) (latest time.Time, ok bool) {
	for i, m := range members {
		dl, has := m.Deadline()
		if !has {
			return latest, false
		}
		if i == 0 || dl.After(latest) {
			latest = dl
		}
	}
	return latest, true
}
