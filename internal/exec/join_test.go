package exec

import (
	"context"
	"testing"
	"time"
)

func waitDone(t *testing.T, ctx context.Context) {
	t.Helper()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("joined context never became done")
	}
}

func TestJoinContextAllMembersDone(t *testing.T) {
	m1, c1 := context.WithCancel(context.Background())
	m2, c2 := context.WithCancel(context.Background())
	j, cancel := JoinContext(context.Background(), m1, m2)
	defer cancel()

	c1()
	select {
	case <-j.Done():
		t.Fatal("join done while a member is still live")
	case <-time.After(10 * time.Millisecond):
	}
	c2()
	waitDone(t, j)
}

func TestJoinContextBaseCancellation(t *testing.T) {
	base, cancelBase := context.WithCancel(context.Background())
	m, cm := context.WithCancel(context.Background())
	defer cm()
	j, cancel := JoinContext(base, m)
	defer cancel()

	cancelBase()
	waitDone(t, j)
	if j.Err() != context.Canceled {
		t.Fatalf("Err = %v, want Canceled", j.Err())
	}
}

func TestJoinContextDeadlineIsLatestMember(t *testing.T) {
	near := time.Now().Add(50 * time.Millisecond)
	far := time.Now().Add(10 * time.Second)
	m1, c1 := context.WithDeadline(context.Background(), near)
	defer c1()
	m2, c2 := context.WithDeadline(context.Background(), far)
	defer c2()

	j, cancel := JoinContext(context.Background(), m1, m2)
	defer cancel()
	dl, ok := j.Deadline()
	if !ok || !dl.Equal(far) {
		t.Fatalf("Deadline = %v, %v; want %v", dl, ok, far)
	}

	// The near-deadline member expiring alone must NOT end the join: the
	// far-deadline requester is still waiting for the shared result.
	<-m1.Done()
	select {
	case <-j.Done():
		t.Fatal("join ended with a live member remaining")
	case <-time.After(20 * time.Millisecond):
	}
}

func TestJoinContextMemberWithoutDeadline(t *testing.T) {
	m1, c1 := context.WithTimeout(context.Background(), time.Hour)
	defer c1()
	m2, c2 := context.WithCancel(context.Background())
	defer c2()
	j, cancel := JoinContext(context.Background(), m1, m2)
	defer cancel()
	if _, ok := j.Deadline(); ok {
		t.Fatal("join inherited a deadline although one member has none")
	}
}

func TestJoinContextNoMembers(t *testing.T) {
	j, cancel := JoinContext(context.Background())
	select {
	case <-j.Done():
		t.Fatal("empty join born done")
	default:
	}
	cancel()
	waitDone(t, j)
}

func TestJoinContextCancelFuncStopsWaiters(t *testing.T) {
	m, cm := context.WithCancel(context.Background()) // never cancelled by us below
	defer cm()
	j, cancel := JoinContext(context.Background(), m)
	cancel()
	waitDone(t, j) // and the member-watcher goroutine exits via j.Done
}
