package exec

import "sync/atomic"

// atomicInt32 aliases sync/atomic.Int32 so the Ctx accessors can hand out
// atomic scratch without forcing callers to import this package's dependency
// order.
type atomicInt32 = atomic.Int32

// Arena recycles scratch slices across solves. Get-style calls (via the Ctx
// accessors) pop a recycled slice with sufficient capacity — zeroed, so they
// behave exactly like make — and Put-style calls return dead slices for
// later reuse. The arena grows organically: the first solve allocates, later
// solves on the same arena mostly reuse.
//
// An Arena is NOT safe for concurrent use; each in-flight solve needs its
// own (popmatch.Solver maintains a sync.Pool of them).
type Arena struct {
	// Aux carries a solver-layer engine object that lives alongside the
	// arena: core's unified solve engine caches its kernels (prebound loop
	// closures, pooled ties scratch, big.Int pools) here so a recycled
	// arena brings its engine — and hence a zero-allocation steady state in
	// every mode — with it. Owned by whichever layer installed it; other
	// code must leave it alone.
	Aux any

	ints    bucket[int]
	int32s  bucket[int32]
	int64s  bucket[int64]
	bools   bucket[bool]
	uint32s bucket[uint32]
	atomics bucket[atomicInt32]
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Reset drops every recycled buffer (and any attached Aux kernel),
// releasing the memory to the GC.
func (a *Arena) Reset() {
	a.Aux = nil
	a.ints.free = nil
	a.int32s.free = nil
	a.int64s.free = nil
	a.bools.free = nil
	a.uint32s.free = nil
	a.atomics.free = nil
}

// Grow resizes a recycled slice to length n, reallocating only when the
// capacity is insufficient; contents are unspecified (callers reset what
// they read). It is the scratch-reuse primitive for kernel-owned buffers
// that live outside an Arena's typed buckets.
func Grow[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	*s = (*s)[:n]
	return *s
}

// bucket is a per-type free list. Lookup is a linear scan over the free
// slices (they number at most a few dozen per solve), preferring the
// smallest capacity that fits to keep big buffers available for big asks.
type bucket[T any] struct {
	free [][]T
}

func (b *bucket[T]) get(n int) []T {
	best := -1
	for i, s := range b.free {
		if cap(s) >= n && (best < 0 || cap(s) < cap(b.free[best])) {
			best = i
		}
	}
	if best < 0 {
		return make([]T, n)
	}
	s := b.free[best][:n]
	last := len(b.free) - 1
	b.free[best] = b.free[last]
	b.free[last] = nil
	b.free = b.free[:last]
	clear(s)
	return s
}

func (b *bucket[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	b.free = append(b.free, s[:0])
}
