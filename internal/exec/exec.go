// Package exec provides the unified execution context every solver in this
// repository runs on.
//
// A Ctx bundles the four concerns the algorithm layers used to thread by
// hand as a (Pool, Tracer) pair:
//
//   - a persistent worker pool (par.Pool) whose goroutines outlive
//     individual solves, so repeated solves pay no spawn cost;
//   - a par.Tracer accumulating PRAM rounds and work for the NC accounting;
//   - a context.Context whose cancellation/deadline is checked at every
//     bulk-synchronous round boundary;
//   - an optional Arena recycling scratch slices across solves.
//
// Ctx implements par.Runner, so every parallel primitive (par.Double,
// par.ExclusiveScan, par.Reduce, ...) and every algorithm package runs on it
// unchanged.
//
// # Cancellation
//
// Cancellation unwinds the solver stack with a panic carrying a private
// sentinel, raised on the calling goroutine at a round boundary (never
// inside worker goroutines). Public entry points convert it back into the
// context's error with
//
//	func Solve(...) (res Result, err error) {
//	    defer exec.CatchCancel(&err)
//	    ...
//	}
//
// This keeps the deep PRAM-simulation call chains free of error plumbing
// while guaranteeing prompt, goroutine-leak-free returns.
package exec

import (
	"context"

	"repro/internal/par"
)

// Config assembles a Ctx. Every field is optional; the zero value runs on
// the process-wide shared pool with no tracing, no cancellation and no
// arena.
type Config struct {
	// Context carries cancellation and deadlines; nil means
	// context.Background().
	Context context.Context
	// Pool supplies the workers; nil means par.Shared().
	Pool *par.Pool
	// Tracer, if non-nil, accumulates parallel rounds and work.
	Tracer *par.Tracer
	// Arena, if non-nil, recycles scratch buffers across solves. An Arena
	// (and therefore the Ctx) must not be shared by concurrent solves.
	Arena *Arena
}

// Ctx is the execution context. Construct with New or Background.
type Ctx struct {
	pool  *par.Pool
	tr    *par.Tracer
	gctx  context.Context
	arena *Arena
}

// New returns a Ctx for cfg, applying the documented defaults.
func New(cfg Config) *Ctx {
	c := &Ctx{}
	c.Reset(cfg)
	return c
}

// Reset re-points an existing Ctx at cfg, applying the same defaults as
// New. It lets a pooled session reuse one Ctx allocation across solves; the
// Ctx must not be in use by a concurrent solve.
func (c *Ctx) Reset(cfg Config) {
	c.pool, c.tr, c.gctx, c.arena = cfg.Pool, cfg.Tracer, cfg.Context, cfg.Arena
	if c.pool == nil {
		c.pool = par.Shared()
	}
	if c.gctx == nil {
		c.gctx = context.Background()
	}
}

// Background returns a Ctx on the shared pool with no tracing, cancellation
// or arena — the default context for one-shot calls and tests.
func Background() *Ctx { return New(Config{}) }

// Pool returns the underlying worker pool.
func (c *Ctx) Pool() *par.Pool { return c.pool }

// Tracer returns the attached tracer (possibly nil).
func (c *Ctx) Tracer() *par.Tracer { return c.tr }

// Context returns the attached context.Context.
func (c *Ctx) Context() context.Context { return c.gctx }

// Err returns the context's error, nil while the solve may proceed.
func (c *Ctx) Err() error { return c.gctx.Err() }

// cancelPanic carries the context error through the solver stack; see
// CatchCancel.
type cancelPanic struct{ err error }

// Check panics with the cancellation sentinel if the context is done. It is
// called automatically at every round boundary; long sequential sections may
// call it directly.
func (c *Ctx) Check() {
	if err := c.gctx.Err(); err != nil {
		panic(cancelPanic{err})
	}
}

// CatchCancel recovers the cancellation sentinel raised by Ctx.Check and
// stores the context's error into *err. Any other panic is re-raised. Use as
// a deferred call at public solver boundaries.
func CatchCancel(err *error) {
	if r := recover(); r != nil {
		if c, ok := r.(cancelPanic); ok {
			*err = c.err
			return
		}
		panic(r)
	}
}

// For runs fn(i) for every i in [0, n) as one parallel round, checking
// cancellation first. Part of par.Runner. With a tracer attached the round
// also measures its completion-barrier wait into the tracer.
func (c *Ctx) For(n int, fn func(i int)) {
	c.Check()
	c.pool.ForGrainTr(n, par.DefaultGrain, fn, c.tr)
}

// ForGrain is For with an explicit grain. Part of par.Runner.
func (c *Ctx) ForGrain(n, grain int, fn func(i int)) {
	c.Check()
	c.pool.ForGrainTr(n, grain, fn, c.tr)
}

// Range hands contiguous chunks to workers, checking cancellation first.
// Part of par.Runner.
func (c *Ctx) Range(n, grain int, fn func(lo, hi int)) {
	c.Check()
	c.pool.RangeTr(n, grain, fn, c.tr)
}

// Workers reports the pool's parallelism. Part of par.Runner.
func (c *Ctx) Workers() int { return c.pool.Workers() }

// Round records one bulk-synchronous step in the tracer. Part of par.Runner.
func (c *Ctx) Round(work int) { c.tr.Round(work) }

// AddWork adds work to the tracer without starting a round. Part of
// par.Runner.
func (c *Ctx) AddWork(work int) { c.tr.AddWork(work) }

// Phase marks the start of an algorithm phase in the tracer: subsequent
// rounds, work and wall time are attributed to p until the next Phase call.
// A no-op without a tracer, so kernels call it unconditionally.
func (c *Ctx) Phase(p par.Phase) { c.tr.BeginPhase(p) }

// Arena returns the attached arena (possibly nil).
func (c *Ctx) Arena() *Arena { return c.arena }

// NoCancel returns a view of the context that never observes cancellation
// (pool, tracer and arena are shared). Operations that cannot report errors
// — and would therefore let the cancellation sentinel escape as a panic —
// run their loops on this view; their callers' round boundaries still
// observe the real context.
func (c *Ctx) NoCancel() *Ctx {
	if c.gctx == context.Background() {
		return c
	}
	d := *c
	d.gctx = context.Background()
	return &d
}

// The typed scratch accessors below allocate from the arena when one is
// attached and fall back to plain make otherwise; the matching Put methods
// recycle a slice for later Gets and are no-ops without an arena. Slices
// handed to Put must not be referenced afterwards, and nothing reachable
// from a solver's returned result may come from the arena.

// Ints returns a zeroed scratch []int of length n.
func (c *Ctx) Ints(n int) []int {
	if c.arena == nil {
		return make([]int, n)
	}
	return c.arena.ints.get(n)
}

// PutInts recycles a slice obtained from Ints (or any dead []int).
func (c *Ctx) PutInts(s []int) {
	if c.arena != nil {
		c.arena.ints.put(s)
	}
}

// Int32s returns a zeroed scratch []int32 of length n.
func (c *Ctx) Int32s(n int) []int32 {
	if c.arena == nil {
		return make([]int32, n)
	}
	return c.arena.int32s.get(n)
}

// PutInt32s recycles a slice obtained from Int32s.
func (c *Ctx) PutInt32s(s []int32) {
	if c.arena != nil {
		c.arena.int32s.put(s)
	}
}

// Int64s returns a zeroed scratch []int64 of length n.
func (c *Ctx) Int64s(n int) []int64 {
	if c.arena == nil {
		return make([]int64, n)
	}
	return c.arena.int64s.get(n)
}

// PutInt64s recycles a slice obtained from Int64s.
func (c *Ctx) PutInt64s(s []int64) {
	if c.arena != nil {
		c.arena.int64s.put(s)
	}
}

// Bools returns a zeroed scratch []bool of length n.
func (c *Ctx) Bools(n int) []bool {
	if c.arena == nil {
		return make([]bool, n)
	}
	return c.arena.bools.get(n)
}

// PutBools recycles a slice obtained from Bools.
func (c *Ctx) PutBools(s []bool) {
	if c.arena != nil {
		c.arena.bools.put(s)
	}
}

// Uint32s returns a zeroed scratch []uint32 of length n.
func (c *Ctx) Uint32s(n int) []uint32 {
	if c.arena == nil {
		return make([]uint32, n)
	}
	return c.arena.uint32s.get(n)
}

// PutUint32s recycles a slice obtained from Uint32s.
func (c *Ctx) PutUint32s(s []uint32) {
	if c.arena != nil {
		c.arena.uint32s.put(s)
	}
}

// AtomicInt32s returns a zeroed scratch []atomic.Int32 of length n.
func (c *Ctx) AtomicInt32s(n int) []atomicInt32 {
	if c.arena == nil {
		return make([]atomicInt32, n)
	}
	return c.arena.atomics.get(n)
}

// PutAtomicInt32s recycles a slice obtained from AtomicInt32s.
func (c *Ctx) PutAtomicInt32s(s []atomicInt32) {
	if c.arena != nil {
		c.arena.atomics.put(s)
	}
}
