package pseudoforest

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/concomp"
	"repro/internal/gf2"
	"repro/internal/par"
)

// The four cycle-detection approaches of §IV-A. All return a per-vertex
// on-cycle marking and must agree; TestCycleMethodsAgree cross-validates them
// and BenchmarkCycleMethods compares their cost, reproducing the paper's
// discussion of the trade-offs between Theorems 5, 7 and 8.

// CyclesByDoubling marks cycle vertices by pointer doubling: after jumping at
// least n steps, the image of every component sweeps out exactly its cycle
// (tree components land on their sink, which has no out-edge and is
// excluded). This is the method Analyze uses internally.
func CyclesByDoubling(x par.Runner, g *Graph) []bool {
	n := g.N()
	abs := g.absorbing()
	zeros := make([]int, n)
	ptr, _ := par.Double(x, abs, zeros, func(a, b int) int { return 0 }, par.Iterations(n)+1)
	hit := make([]uint32, n)
	x.For(n, func(v int) { atomicStore1(&hit[ptr[v]]) })
	x.Round(n)
	on := make([]bool, n)
	x.For(n, func(v int) { on[v] = hit[v] == 1 && g.Succ[v] >= 0 })
	x.Round(n)
	return on
}

// CyclesByClosure marks cycle vertices with the transitive-closure approach
// (Theorem 5): i and j (i != j) lie on a common cycle iff G*(i,j) and
// G*(j,i). A vertex is on a cycle iff it mutually reaches some other vertex.
func CyclesByClosure(x par.Runner, g *Graph) []bool {
	n := g.N()
	adj := bitmat.FromFunctional(g.Succ)
	closure := bitmat.TransitiveClosure(x, adj)
	closureT := closure.Transpose()
	on := make([]bool, n)
	x.For(n, func(v int) {
		row := closure.Row(v)
		col := closureT.Row(v)
		for w := range row {
			both := row[w] & col[w]
			// Mask out the diagonal bit (v reaches itself reflexively).
			if w == v/64 {
				both &^= 1 << (v % 64)
			}
			if both != 0 {
				on[v] = true
				return
			}
		}
	})
	x.Round(n * ((n + 63) / 64))
	return on
}

// CyclesByRank marks cycle vertices with the incidence-rank approach
// (Lemma 6 + Theorem 7): edge e lies on its component's unique cycle iff
// rank(I_{G−e}) = rank(I_G), since removing a cycle edge preserves the
// component count. Each edge's rank is computed independently in parallel.
func CyclesByRank(x par.Runner, g *Graph) []bool {
	n := g.N()
	edges, _ := g.UndirectedEdges()
	intEdges := make([][2]int, len(edges))
	for i, e := range edges {
		intEdges[i] = [2]int{int(e[0]), int(e[1])}
	}
	seq := par.Sequential()
	base := gf2.Rank(seq, gf2.Incidence(n, intEdges))
	onEdge := make([]bool, len(edges))
	x.ForGrain(len(edges), 1, func(i int) {
		r := gf2.Rank(seq, gf2.IncidenceWithout(n, intEdges, i))
		onEdge[i] = r == base
	})
	x.Round(len(edges) * n)
	return vertexMarksFromEdges(x, n, edges, onEdge)
}

// CyclesByCC marks cycle vertices with the component-count approach
// (Theorem 8): edge e is on a cycle iff cc(G−e) = cc(G).
func CyclesByCC(x par.Runner, g *Graph) []bool {
	n := g.N()
	edges, _ := g.UndirectedEdges()
	base := concomp.Count(concomp.Parallel(x, n, edges))
	onEdge := make([]bool, len(edges))
	x.ForGrain(len(edges), 1, func(i int) {
		without := make([][2]int32, 0, len(edges)-1)
		without = append(without, edges[:i]...)
		without = append(without, edges[i+1:]...)
		onEdge[i] = concomp.Count(concomp.BFS(n, without)) == base
	})
	x.Round(len(edges) * n)
	return vertexMarksFromEdges(x, n, edges, onEdge)
}

// PathByCycleCompletion extracts the path from q to its component's sink
// using the construction in the last paragraph of §IV-A: add one directed
// edge from the sink back to q; the component becomes a cycle component
// whose unique cycle, traversed from q and truncated before the added edge,
// is exactly the switching path. It exists to cross-validate the
// binary-lifting path extraction used by Algorithm 3; q must lie in a tree
// component.
func PathByCycleCompletion(x par.Runner, g *Graph, q int) ([]int32, error) {
	a := Analyze(x, g)
	sink := a.Sink[q]
	if sink < 0 {
		return nil, fmt.Errorf("pseudoforest: vertex %d is in a cycle component", q)
	}
	if int(sink) == q {
		return []int32{sink}, nil
	}
	succ2 := make([]int32, len(g.Succ))
	copy(succ2, g.Succ)
	succ2[sink] = int32(q)
	g2, err := New(succ2)
	if err != nil {
		return nil, err
	}
	on := CyclesByDoubling(x, g2)
	if !on[q] {
		return nil, fmt.Errorf("pseudoforest: completion cycle misses %d", q)
	}
	path := []int32{int32(q)}
	for u := g2.Succ[q]; u != int32(q); u = g2.Succ[u] {
		path = append(path, u)
	}
	return path, nil
}

// vertexMarksFromEdges lifts an on-cycle edge marking to vertices: both
// endpoints of a cycle edge are cycle vertices.
func vertexMarksFromEdges(x par.Runner, n int, edges [][2]int32, onEdge []bool) []bool {
	hit := make([]uint32, n)
	x.For(len(edges), func(i int) {
		if onEdge[i] {
			atomicStore1(&hit[edges[i][0]])
			atomicStore1(&hit[edges[i][1]])
		}
	})
	x.Round(len(edges))
	on := make([]bool, n)
	x.For(n, func(v int) { on[v] = hit[v] == 1 })
	x.Round(n)
	return on
}
