package pseudoforest

import (
	"math/rand"
	"testing"

	"repro/internal/par"
)

// refOnCycle is the straightforward sequential reference: walk from every
// vertex with the standard coloring scheme to find cycle vertices.
func refOnCycle(succ []int32) []bool {
	n := len(succ)
	state := make([]int, n) // 0 unvisited, 1 in progress (stamped), 2 done
	stamp := make([]int, n)
	on := make([]bool, n)
	for s := 0; s < n; s++ {
		if state[s] != 0 {
			continue
		}
		v := s
		for v != -1 && state[v] == 0 {
			state[v] = 1
			stamp[v] = s
			v = int(succ[v])
			if v >= 0 && state[v] == 1 && stamp[v] == s {
				// Found a new cycle: mark it.
				u := v
				for {
					on[u] = true
					u = int(succ[u])
					if u == v {
						break
					}
				}
				break
			}
		}
		// Finalize everything on this walk.
		v = s
		for v != -1 && state[v] == 1 && stamp[v] == s {
			state[v] = 2
			v = int(succ[v])
		}
	}
	return on
}

// randomFunctional generates a functional graph with a mix of sinks, trees
// and cycles.
func randomFunctional(rng *rand.Rand, n int) *Graph {
	succ := make([]int32, n)
	for v := 0; v < n; v++ {
		r := rng.Float64()
		switch {
		case r < 0.15:
			succ[v] = -1 // sink
		default:
			u := rng.Intn(n)
			for u == v {
				u = rng.Intn(n)
			}
			succ[v] = int32(u)
		}
	}
	g, err := New(succ)
	if err != nil {
		panic(err)
	}
	return g
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New([]int32{0}); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := New([]int32{5}); err == nil {
		t.Fatal("out-of-range successor accepted")
	}
	if _, err := New([]int32{-2}); err == nil {
		t.Fatal("successor below -1 accepted")
	}
	if _, err := New([]int32{1, -1}); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestCycleMethodsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	p := par.NewPool(0)
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(80)
		g := randomFunctional(rng, n)
		want := refOnCycle(g.Succ)
		methods := map[string][]bool{
			"doubling": CyclesByDoubling(p, g),
			"closure":  CyclesByClosure(p, g),
			"rank":     CyclesByRank(p, g),
			"cc":       CyclesByCC(p, g),
		}
		for name, got := range methods {
			if !boolsEqual(got, want) {
				t.Fatalf("n=%d method=%s: on-cycle marking differs from reference\ngot  %v\nwant %v\nsucc %v",
					n, name, got, want, g.Succ)
			}
		}
	}
}

func TestCycleMethodsTwoCycle(t *testing.T) {
	// The 2-cycle (a directed pair) is the trickiest case: the underlying
	// undirected multigraph has two parallel edges forming a length-2 cycle.
	p := par.NewPool(4)
	g, _ := New([]int32{1, 0, 0, -1}) // 0 <-> 1, 2 -> 0 tail, 3 sink
	want := []bool{true, true, false, false}
	for name, got := range map[string][]bool{
		"doubling": CyclesByDoubling(p, g),
		"closure":  CyclesByClosure(p, g),
		"rank":     CyclesByRank(p, g),
		"cc":       CyclesByCC(p, g),
	} {
		if !boolsEqual(got, want) {
			t.Fatalf("method=%s: got %v, want %v", name, got, want)
		}
	}
}

func TestAnalyzeComponentsAndSinks(t *testing.T) {
	p := par.NewPool(4)
	// Component A: 0 -> 1 -> 2 -> 0 cycle with tail 3 -> 0.
	// Component B: 4 -> 5, 5 sink, 6 -> 5.
	g, _ := New([]int32{1, 2, 0, 0, 5, -1, 5})
	a := Analyze(p, g)

	for v := 0; v <= 3; v++ {
		if a.Comp[v] != 0 {
			t.Fatalf("Comp[%d] = %d, want 0", v, a.Comp[v])
		}
		if a.Sink[v] != -1 {
			t.Fatalf("Sink[%d] = %d, want -1 (cycle component)", v, a.Sink[v])
		}
		if a.DistToSink[v] != -1 {
			t.Fatalf("DistToSink[%d] = %d, want -1", v, a.DistToSink[v])
		}
	}
	for v := 4; v <= 6; v++ {
		if a.Comp[v] != 4 {
			t.Fatalf("Comp[%d] = %d, want 4", v, a.Comp[v])
		}
		if a.Sink[v] != 5 {
			t.Fatalf("Sink[%d] = %d, want 5", v, a.Sink[v])
		}
	}
	wantOn := []bool{true, true, true, false, false, false, false}
	if !boolsEqual(a.OnCycle, wantOn) {
		t.Fatalf("OnCycle = %v, want %v", a.OnCycle, wantOn)
	}
	if a.DistToSink[4] != 1 || a.DistToSink[5] != 0 || a.DistToSink[6] != 1 {
		t.Fatalf("DistToSink tail = %v", a.DistToSink[4:])
	}
}

func TestAnalyzeMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, p := range []*par.Pool{par.Sequential(), par.NewPool(0)} {
		for trial := 0; trial < 25; trial++ {
			n := 1 + rng.Intn(300)
			g := randomFunctional(rng, n)
			a := Analyze(p, g)
			want := refOnCycle(g.Succ)
			if !boolsEqual(a.OnCycle, want) {
				t.Fatalf("workers=%d n=%d: Analyze.OnCycle differs from reference", p.Workers(), n)
			}
			// Distance consistency: dist decreases by 1 along Succ in tree
			// components; sinks have dist 0.
			for v := 0; v < n; v++ {
				s := g.Succ[v]
				switch {
				case s < 0:
					if a.DistToSink[v] != 0 {
						t.Fatalf("sink %d has dist %d", v, a.DistToSink[v])
					}
				case a.DistToSink[v] >= 0:
					if a.DistToSink[int(s)] != a.DistToSink[v]-1 {
						t.Fatalf("dist[%d]=%d but dist[succ]=%d", v, a.DistToSink[v], a.DistToSink[int(s)])
					}
				default:
					if a.DistToSink[int(s)] != -1 {
						t.Fatalf("cycle-bound %d has terminating successor", v)
					}
				}
			}
		}
	}
}

func TestCycleVerticesOrder(t *testing.T) {
	p := par.NewPool(4)
	// Cycle 2 -> 5 -> 3 -> 2 plus tail 7 -> 2; separate cycle 0 -> 1 -> 0.
	g, _ := New([]int32{1, 0, 5, 2, -1, 3, -1, 2})
	a := Analyze(p, g)
	cycles := a.CycleVertices(g)
	if len(cycles) != 2 {
		t.Fatalf("found %d cycles, want 2", len(cycles))
	}
	c0 := cycles[a.Comp[0]]
	if len(c0) != 2 || c0[0] != 0 || c0[1] != 1 {
		t.Fatalf("cycle A = %v, want [0 1]", c0)
	}
	c2 := cycles[a.Comp[2]]
	if len(c2) != 3 || c2[0] != 2 || c2[1] != 5 || c2[2] != 3 {
		t.Fatalf("cycle B = %v, want [2 5 3] (successor order from min)", c2)
	}
}

func TestWeightedLiftPathSum(t *testing.T) {
	p := par.NewPool(4)
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(200)
		// In-tree toward sink 0 so all paths terminate.
		succ := make([]int32, n)
		succ[0] = -1
		for v := 1; v < n; v++ {
			succ[v] = int32(rng.Intn(v))
		}
		g, _ := New(succ)
		w := make([]int64, n)
		for v := range w {
			w[v] = int64(rng.Intn(21) - 10)
		}
		wl := BuildWeightedLift(p, g, w)
		for q := 0; q < 30; q++ {
			v := rng.Intn(n)
			steps := rng.Intn(n + 3)
			var want int64
			u := v
			for s := 0; s < steps && succ[u] >= 0; s++ {
				want += w[u]
				u = int(succ[u])
			}
			if got := wl.PathSum(v, steps); got != want {
				t.Fatalf("n=%d: PathSum(%d,%d) = %d, want %d", n, v, steps, got, want)
			}
			wantJump := v
			for s := 0; s < steps && succ[wantJump] >= 0; s++ {
				wantJump = int(succ[wantJump])
			}
			if got := wl.Jump(v, steps); got != wantJump {
				t.Fatalf("n=%d: Jump(%d,%d) = %d, want %d", n, v, steps, got, wantJump)
			}
		}
	}
}

func TestUndirectedEdges(t *testing.T) {
	g, _ := New([]int32{1, -1, 1})
	edges, src := g.UndirectedEdges()
	if len(edges) != 2 || len(src) != 2 {
		t.Fatalf("edges = %v src = %v", edges, src)
	}
	if edges[0] != [2]int32{0, 1} || src[0] != 0 {
		t.Fatalf("edge 0 = %v from %d", edges[0], src[0])
	}
	if edges[1] != [2]int32{2, 1} || src[1] != 2 {
		t.Fatalf("edge 1 = %v from %d", edges[1], src[1])
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	p := par.NewPool(4)
	g, _ := New(nil)
	a := Analyze(p, g)
	if len(a.Comp) != 0 || len(a.OnCycle) != 0 {
		t.Fatal("empty graph should produce empty analysis")
	}
}

func TestPathByCycleCompletionMatchesLiftingWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	p := par.NewPool(0)
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(150)
		// In-forest toward sinks so every component is a tree component.
		succ := make([]int32, n)
		succ[0] = -1
		for v := 1; v < n; v++ {
			if rng.Intn(8) == 0 {
				succ[v] = -1 // extra sink
			} else {
				succ[v] = int32(rng.Intn(v))
			}
		}
		g, _ := New(succ)
		for q := 0; q < n; q++ {
			got, err := PathByCycleCompletion(p, g, q)
			if err != nil {
				t.Fatal(err)
			}
			// Reference: the plain successor walk.
			want := []int32{int32(q)}
			for u := succ[q]; u != -1; u = succ[u] {
				want = append(want, u)
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d q=%d: path %v, want %v", n, q, got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d q=%d: path %v, want %v", n, q, got, want)
				}
			}
		}
	}
}

func TestPathByCycleCompletionRejectsCycleVertices(t *testing.T) {
	p := par.NewPool(2)
	g, _ := New([]int32{1, 0}) // 2-cycle
	if _, err := PathByCycleCompletion(p, g, 0); err == nil {
		t.Fatal("cycle-component vertex accepted")
	}
}

func BenchmarkAnalyze(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := randomFunctional(rng, 1<<15)
	p := par.NewPool(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Analyze(p, g)
	}
}
