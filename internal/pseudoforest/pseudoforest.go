// Package pseudoforest analyzes directed pseudoforests (functional graphs):
// digraphs in which every vertex has outdegree at most one. Both switching
// graphs of the paper are such graphs — G_M over posts (§IV, Lemma 4) and H_M
// over men (§VI, Lemma 17) — and every component contains either a single
// sink or a single cycle.
//
// The package finds the unique cycle of each component with the four
// approaches §IV-A discusses, so they can be cross-validated and benchmarked
// against each other:
//
//  1. pointer doubling on the functional graph itself (the cycle of a
//     component is exactly the image of the "jump n steps" map),
//  2. directed transitive closure (i and j share a cycle iff they reach each
//     other — Theorem 5 route),
//  3. GF(2) incidence-matrix rank of the underlying undirected multigraph
//     with one edge removed (Lemma 6 + Theorem 7 route),
//  4. connected-components count with one edge removed (Theorem 8 route).
//
// It also provides the weighted machinery Algorithm 3 needs: distance to
// sink, per-component cycle weight, and path weights to the sink via binary
// lifting.
package pseudoforest

import (
	"fmt"
	"sync/atomic"

	"repro/internal/concomp"
	"repro/internal/par"
)

// Graph is a directed pseudoforest on n vertices: Succ[v] is the unique
// out-neighbor of v, or -1 if v is a sink. Self-loops are not allowed.
type Graph struct {
	Succ []int32
}

// New validates and wraps a successor array.
func New(succ []int32) (*Graph, error) {
	for v, s := range succ {
		if int(s) == v {
			return nil, fmt.Errorf("pseudoforest: self-loop at vertex %d", v)
		}
		if s < -1 || int(s) >= len(succ) {
			return nil, fmt.Errorf("pseudoforest: successor %d of vertex %d out of range", s, v)
		}
	}
	return &Graph{Succ: succ}, nil
}

// N returns the number of vertices.
func (g *Graph) N() int { return len(g.Succ) }

// absorbing returns the successor array with sinks turned into self-loops,
// the convention par.Double expects.
func (g *Graph) absorbing() []int32 {
	a := make([]int32, len(g.Succ))
	for v, s := range g.Succ {
		if s < 0 {
			a[v] = int32(v)
		} else {
			a[v] = s
		}
	}
	return a
}

// UndirectedEdges returns the underlying undirected multigraph edge list:
// one edge {v, Succ[v]} per non-sink vertex, indexed by source vertex order.
// EdgeSource[i] records which vertex contributed edge i.
func (g *Graph) UndirectedEdges() (edges [][2]int32, edgeSource []int32) {
	for v, s := range g.Succ {
		if s >= 0 {
			edges = append(edges, [2]int32{int32(v), s})
			edgeSource = append(edgeSource, int32(v))
		}
	}
	return edges, edgeSource
}

// Analysis holds the full decomposition of a pseudoforest.
type Analysis struct {
	// Comp[v] is the component label: the minimum vertex id of v's weakly
	// connected component.
	Comp []int32
	// OnCycle[v] reports whether v lies on its component's cycle.
	OnCycle []bool
	// Sink[v] is the sink vertex of v's component, or -1 for cycle
	// components.
	Sink []int32
	// DistToSink[v] is the number of Succ steps from v to the sink, or -1 in
	// cycle components.
	DistToSink []int
	// Lift is the binary-lifting table over the (sink-absorbing) successor
	// array, for O(log n) path queries.
	Lift *par.Lifting
}

// Analyze decomposes the pseudoforest using only pointer doubling and the
// parallel connected-components primitive — the fully parallel (method 1)
// route. All other cycle-finding methods are provided separately for
// cross-validation.
func Analyze(x par.Runner, g *Graph) *Analysis {
	n := g.N()
	a := &Analysis{
		Comp:       make([]int32, n),
		OnCycle:    make([]bool, n),
		Sink:       make([]int32, n),
		DistToSink: make([]int, n),
	}
	if n == 0 {
		return a
	}
	abs := g.absorbing()

	// Components of the underlying undirected graph.
	edges, _ := g.UndirectedEdges()
	a.Comp = concomp.Parallel(x, n, edges)

	// Distance to sink (-1 flags cycle components' vertices).
	a.DistToSink = par.DistanceToTerminal(x, abs)

	// Cycle membership: jump at least n steps from every vertex; the final
	// pointers of a cycle component sweep out exactly its cycle, while tree
	// components land on their sink. Mark the image, then remove sinks.
	// The concurrent same-value marking is the arbitrary-CRCW write idiom,
	// realized with atomic stores.
	zeros := make([]int, n)
	ptr, _ := par.Double(x, abs, zeros, func(a, b int) int { return 0 }, par.Iterations(n)+1)
	hit := make([]uint32, n)
	x.For(n, func(v int) { atomicStore1(&hit[ptr[v]]) })
	x.Round(n)
	x.For(n, func(v int) {
		a.OnCycle[v] = hit[v] == 1 && g.Succ[v] >= 0
	})
	x.Round(n)

	// Sinks: a sink is its own component's terminal; broadcast per component.
	sinkOf := make([]int32, n)
	for i := range sinkOf {
		sinkOf[i] = -1
	}
	x.For(n, func(v int) {
		if g.Succ[v] < 0 {
			sinkOf[a.Comp[v]] = int32(v) // unique sink per component (Lemma 4)
		}
	})
	x.Round(n)
	x.For(n, func(v int) { a.Sink[v] = sinkOf[a.Comp[v]] })
	x.Round(n)

	a.Lift = par.BuildLifting(x, abs)
	return a
}

// CycleVertices groups the on-cycle vertices by component label. The order
// within each cycle follows the successor relation starting from the
// component's minimum on-cycle vertex, so results are deterministic.
func (a *Analysis) CycleVertices(g *Graph) map[int32][]int32 {
	leader := map[int32]int32{}
	for v := 0; v < g.N(); v++ {
		if !a.OnCycle[v] {
			continue
		}
		c := a.Comp[v]
		if cur, ok := leader[c]; !ok || int32(v) < cur {
			leader[c] = int32(v)
		}
	}
	out := make(map[int32][]int32, len(leader))
	for c, start := range leader {
		cyc := []int32{start}
		for u := g.Succ[start]; u != start; u = g.Succ[u] {
			cyc = append(cyc, u)
		}
		out[c] = cyc
	}
	return out
}

// PathSum returns the sum of the edge weights w[v] (the weight of edge
// v -> Succ[v]) along the `steps`-edge path starting at v, using the lifting
// tables for O(log n) time. Callers must ensure the path stays inside the
// graph (sinks absorb with weight 0).
type WeightedLift struct {
	lift *par.Lifting
	sum  [][]int64
}

// BuildWeightedLift augments a lifting table with per-level weight sums:
// sum[k][v] is the total weight of the 2^k edges leaving v (sink-absorbing
// steps contribute 0).
func BuildWeightedLift(x par.Runner, g *Graph, w []int64) *WeightedLift {
	n := g.N()
	abs := g.absorbing()
	lift := par.BuildLifting(x, abs)
	sums := make([][]int64, lift.K)
	level0 := make([]int64, n)
	x.For(n, func(v int) {
		if g.Succ[v] >= 0 {
			level0[v] = w[v]
		}
	})
	x.Round(n)
	sums[0] = level0
	for k := 1; k < lift.K; k++ {
		prev := sums[k-1]
		up := lift.Up[k-1]
		cur := make([]int64, n)
		x.For(n, func(v int) { cur[v] = prev[v] + prev[up[v]] })
		x.Round(n)
		sums[k] = cur
	}
	return &WeightedLift{lift: lift, sum: sums}
}

// PathSum returns the total weight of the first `steps` edges on the path
// from v (absorbing at sinks).
func (wl *WeightedLift) PathSum(v, steps int) int64 {
	var total int64
	for k := 0; k < wl.lift.K && steps > 0; k++ {
		if steps&(1<<k) != 0 {
			total += wl.sum[k][v]
			v = int(wl.lift.Up[k][v])
			steps &^= 1 << k
		}
	}
	return total
}

// Jump exposes the underlying lifting jump.
func (wl *WeightedLift) Jump(v, steps int) int { return wl.lift.Jump(v, steps) }

// atomicStore1 is the arbitrary-CRCW "any writer wins" idiom: all writers
// store the same value, realized with an atomic store to stay race-free.
func atomicStore1(p *uint32) { atomic.StoreUint32(p, 1) }
