// Capacitated house allocation: school-seat assignment.
//
// Schools (posts) have multiple seats; students (applicants) rank a few
// nearby schools. This is the capacitated variant of the paper's one-sided
// model: it reduces to the unit model by cloning every school into
// seat-many tied posts, solving with the ties machinery, and folding the
// matching back. The example solves a contended district, prints the
// per-school rosters, verifies popularity with the independent margin
// oracle, and shows how total capacity controls feasibility.
//
// Run: go run ./examples/capacitated
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/popmatch"
)

const (
	students = 120
	schools  = 12
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Seats uniform in [4, 14]: roughly enough for everyone, unevenly spread.
	caps := make([]int32, schools)
	total := 0
	for s := range caps {
		caps[s] = int32(4 + rng.Intn(11))
		total += int(caps[s])
	}
	lists := make([][]int32, students)
	for a := range lists {
		perm := rng.Perm(schools)
		k := 2 + rng.Intn(3) // each student ranks 2-4 schools
		l := make([]int32, k)
		for i := 0; i < k; i++ {
			l[i] = int32(perm[i])
		}
		lists[a] = l
	}
	ins, err := popmatch.NewCapacitated(caps, lists)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d students, %d schools, %d seats\n\n", students, schools, total)

	res, err := popmatch.MaxCardinality(ins, popmatch.Options{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Exists {
		log.Fatal("no popular assignment for this draw")
	}
	fmt.Printf("popular assignment found: %d/%d students placed\n", res.Size, students)
	for s := int32(0); int(s) < schools; s++ {
		roster := res.Assignment.AssignedTo(s)
		fmt.Printf("  school %2d: %2d/%2d seats filled\n", s, len(roster), caps[s])
	}
	prof := res.Assignment.Profile(ins)
	fmt.Printf("profile: %d first choices, %d second, %d unplaced\n\n",
		prof[0], prof[1], prof[schools])

	// Independent check: the margin oracle runs on the cloned instance and
	// reports the best vote margin any rival assignment achieves.
	if err := popmatch.VerifyAssignment(ins, res.Assignment, popmatch.Options{Workers: 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("margin oracle: assignment is popular")

	// Capacity is the lever: squeeze every school to one seat and the same
	// preferences place far fewer students (or stop admitting a popular
	// assignment at all under heavier contention).
	squeezed := ins.Clone()
	ones := make([]int32, schools)
	for i := range ones {
		ones[i] = 1
	}
	if err := squeezed.SetCapacities(ones); err != nil {
		log.Fatal(err)
	}
	r2, err := popmatch.MaxCardinality(squeezed, popmatch.Options{Workers: 1})
	if err != nil {
		log.Fatal(err)
	}
	if r2.Exists {
		fmt.Printf("same district with 1 seat per school: %d/%d students placed\n", r2.Size, students)
	} else {
		fmt.Println("same district with 1 seat per school: no popular assignment")
	}
}
