// Theorem 11 demo: maximum-cardinality bipartite matching via the
// popular-matching black box.
//
// §V of the paper proves Maximum-cardinality Bipartite Matching ≤_NC
// Popular Matching by giving every edge rank 1. This example runs the
// reduction on random graphs of growing density and cross-checks the sizes
// against a direct Hopcroft–Karp run — they must agree everywhere (Lemmas 12
// and 13).
//
// Run: go run ./examples/ties
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/popmatch"
)

// hopcroftKarpSize is an independent in-example implementation (augmenting
// paths via BFS layers), so the demo does not trust the library twice.
func hopcroftKarpSize(adj [][]int32, nRight int) int {
	n := len(adj)
	matchL := make([]int32, n)
	matchR := make([]int32, nRight)
	for i := range matchL {
		matchL[i] = -1
	}
	for i := range matchR {
		matchR[i] = -1
	}
	var dfs func(l int32, visited []bool) bool
	dfs = func(l int32, visited []bool) bool {
		for _, r := range adj[l] {
			if visited[r] {
				continue
			}
			visited[r] = true
			if matchR[r] == -1 || dfs(matchR[r], visited) {
				matchL[l] = r
				matchR[r] = int32(l)
				return true
			}
		}
		return false
	}
	size := 0
	for l := 0; l < n; l++ {
		visited := make([]bool, nRight)
		if dfs(int32(l), visited) {
			size++
		}
	}
	return size
}

func main() {
	rng := rand.New(rand.NewSource(11))
	fmt.Println("Theorem 11: max bipartite matching via popular matching")
	fmt.Println("  n    density   reduction   direct   agree")
	for _, n := range []int{50, 100, 200} {
		for _, density := range []float64{0.02, 0.05, 0.15} {
			adj := make([][]int32, n)
			for l := 0; l < n; l++ {
				for r := 0; r < n; r++ {
					if rng.Float64() < density {
						adj[l] = append(adj[l], int32(r))
					}
				}
			}
			_, viaPopular, err := popmatch.MaxBipartiteMatching(adj, n, popmatch.Options{})
			if err != nil {
				log.Fatal(err)
			}
			direct := hopcroftKarpSize(adj, n)
			fmt.Printf("  %3d   %6.2f   %9d   %6d   %v\n", n, density, viaPopular, direct, viaPopular == direct)
			if viaPopular != direct {
				log.Fatal("reduction disagrees with direct matching — Theorem 11 broken")
			}
		}
	}
	fmt.Println("\nall sizes agree: the popular-matching black box computes maximum matchings")
	fmt.Println("on rank-one instances, exactly as Lemmas 12 and 13 predict.")
}
