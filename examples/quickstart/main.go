// Quickstart: reproduce the paper's worked example end to end.
//
// Builds the Figure 1 instance, shows the reduced lists of Figure 2, runs
// the NC Algorithm 1/2 pipeline, and prints the resulting popular matching —
// which coincides exactly with the one reported in §III-C of the paper —
// plus the independent verification (Theorem 1 characterization and the
// Hungarian unpopularity-margin oracle).
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/popmatch"
)

func main() {
	ins := popmatch.PaperInstance()
	fmt.Println("Instance I (Figure 1): 8 applicants, 9 posts")
	for a := 0; a < ins.NumApplicants; a++ {
		fmt.Printf("  a%d:", a+1)
		for _, p := range ins.Lists[a] {
			fmt.Printf(" p%d", p+1)
		}
		fmt.Println()
	}

	var stats popmatch.Stats
	res, err := popmatch.Solve(ins, popmatch.Options{Trace: &stats})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Exists {
		log.Fatal("unexpected: the paper's instance admits a popular matching")
	}

	fmt.Println("\nPopular matching (Algorithm 1):")
	for a, p := range res.Matching.PostOf {
		fmt.Printf("  a%d -> p%d\n", a+1, p+1)
	}
	fmt.Printf("\nsize=%d peel-rounds=%d (Lemma 2 bound: ceil(log2 n)+1)\n", res.Size, res.PeelRounds)
	fmt.Printf("parallel cost: %d bulk-synchronous rounds, %d work\n", stats.Rounds(), stats.Work())

	if err := popmatch.Verify(ins, res.Matching, popmatch.Options{}); err != nil {
		log.Fatalf("Theorem 1 verification failed: %v", err)
	}
	margin := popmatch.UnpopularityMargin(ins, res.Matching)
	fmt.Printf("verified: Theorem 1 holds; unpopularity margin = %d (popular iff <= 0)\n", margin)

	// Theorem 9: the instance has exactly 6 popular matchings.
	count := 0
	if _, err := popmatch.EnumerateAll(ins, popmatch.Options{}, func(*popmatch.Matching) bool {
		count++
		return true
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("the instance has %d popular matchings in total (Theorem 9 enumeration)\n", count)
}
