// Batch: the service-shaped API — one reusable Solver, many instances.
//
// A matching service handles heavy traffic of small instances, where
// per-request setup (pool spawning, scratch allocation) would dominate the
// actual solving. This example holds a single popmatch.Solver for the whole
// run, solves a batch of 64 instances over its persistent pool, demonstrates
// deadline-based cancellation, and prints the throughput.
//
// Run: go run ./examples/batch
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/popmatch"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	instances := make([]*popmatch.Instance, 64)
	for i := range instances {
		instances[i] = popmatch.Solvable(rng, 400, 40, 4)
	}

	s := popmatch.NewSolver(popmatch.Options{})
	defer s.Close()

	// The whole batch pipelines over one persistent pool; worker goroutines
	// and scratch arenas are reused across all 64 solves.
	start := time.Now()
	results, err := s.SolveBatch(context.Background(), instances)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	matched := 0
	for _, r := range results {
		matched += r.Size
	}
	fmt.Printf("solved %d instances in %v (%.0f solves/s), %d applicants matched\n",
		len(results), elapsed.Round(time.Microsecond),
		float64(len(results))/elapsed.Seconds(), matched)

	// Every solve observes context deadlines at parallel round boundaries:
	// an already-expired context aborts promptly instead of burning a solve.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := s.SolveBatch(ctx, instances); errors.Is(err, context.DeadlineExceeded) {
		fmt.Println("expired deadline rejected, as expected:", err)
	} else {
		log.Fatalf("expected DeadlineExceeded, got %v", err)
	}
}
