// Medical residents: one-sided preferences with ties and contention.
//
// Residents rank hospital programs; several programs are equally acceptable
// to a resident (ties). The example solves the ties variant (§V, AIKM
// characterization), reports how many residents end at their top tier, and
// demonstrates the existence boundary: as more residents chase the same few
// programs, popular matchings stop existing — the structural content of the
// reduced-graph Hall condition in §III.
//
// Run: go run ./examples/residents
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/popmatch"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	fmt.Println("ties: 300 residents, 260 programs, tie probability 0.35")
	ins := popmatch.RandomTies(rng, 300, 260, 2, 7, 0.35)
	res, err := popmatch.SolveTies(ins, true, popmatch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Exists {
		fmt.Println("  no popular matching exists for this draw")
	} else {
		topTier := 0
		for a, p := range res.Matching.PostOf {
			if int(p) >= ins.NumPosts {
				continue
			}
			if r, ok := ins.RankOf(a, p); ok && r == 1 {
				topTier++
			}
		}
		fmt.Printf("  matched to real programs: %d/300; at their top tier: %d\n", res.Size, topTier)
	}

	fmt.Println("\nexistence boundary: residents per program slot (strict lists):")
	fmt.Println("  load   solvable/20")
	for _, load := range []float64{0.5, 0.8, 1.0, 1.2, 1.5} {
		programs := 120
		residents := int(float64(programs) * load)
		solvable := 0
		for trial := 0; trial < 20; trial++ {
			strict := popmatch.RandomStrict(rng, residents, programs, 3, 6)
			r, err := popmatch.Solve(strict, popmatch.Options{})
			if err != nil {
				log.Fatal(err)
			}
			if r.Exists {
				solvable++
			}
		}
		fmt.Printf("  %4.1f   %d/20\n", load, solvable)
	}

	// Small sanity run with the full oracle.
	small := popmatch.RandomTies(rng, 12, 10, 1, 4, 0.4)
	sres, err := popmatch.SolveTies(small, true, popmatch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	if sres.Exists {
		margin := popmatch.UnpopularityMargin(small, sres.Matching)
		fmt.Printf("\noracle check on a 12-resident instance: unpopularity margin = %d (<= 0 means popular)\n", margin)
	} else {
		fmt.Println("\noracle check skipped: small draw unsolvable")
	}
}
