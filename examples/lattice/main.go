// Lattice walk: §VI of the paper — enumerate stable matchings in parallel,
// one "next" step at a time.
//
// Starting from the man-optimal matching of the paper's Figure 5 instance,
// Algorithm 4 finds every exposed rotation (the cycles of the switching
// graph H_M, Figure 7) and eliminates them, walking a maximal chain of the
// stable matching lattice down to the woman-optimal matching. The same walk
// is then repeated on a larger random instance.
//
// Run: go run ./examples/lattice
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/stablematch"
)

func printMatching(label string, m *stablematch.Matching) {
	fmt.Printf("  %s:", label)
	for mi, w := range m.PM {
		fmt.Printf(" m%d-w%d", mi+1, w+1)
	}
	fmt.Println()
}

func main() {
	ins := stablematch.PaperInstance()
	m := stablematch.PaperMatching()
	fmt.Println("paper Figure 5 instance, underlined stable matching M:")
	printMatching("M", m)

	rots, err := stablematch.ExposedRotations(ins, m, stablematch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrotations exposed in M (cycles of H_M, Figure 7): %d\n", len(rots))
	for i, rho := range rots {
		fmt.Printf("  rho%d:", i+1)
		for j := range rho.Men {
			fmt.Printf(" (m%d,w%d)", rho.Men[j]+1, rho.Women[j]+1)
		}
		fmt.Println()
	}
	fmt.Println("\n\"next\" stable matchings M\\rho (Algorithm 4):")
	nexts, err := stablematch.NextMatchings(ins, m, stablematch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for i, nx := range nexts {
		printMatching(fmt.Sprintf("M\\rho%d", i+1), nx)
		if err := stablematch.Verify(ins, nx); err != nil {
			log.Fatalf("unstable: %v", err)
		}
	}

	fmt.Println("\nmaximal chain from the man-optimal matching:")
	chain, err := stablematch.LatticeWalk(ins, stablematch.GaleShapley(ins), stablematch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range chain {
		printMatching(fmt.Sprintf("step %d", i), c)
	}
	womanOpt, _ := stablematch.IsWomanOptimal(ins, chain[len(chain)-1], stablematch.Options{})
	fmt.Printf("chain length %d, ends woman-optimal: %v\n", len(chain), womanOpt)

	// A larger random instance: sequential chain vs the parallel fast walk
	// that eliminates all exposed rotations per step.
	rng := rand.New(rand.NewSource(42))
	big := stablematch.RandomInstance(rng, 200)
	m0big := stablematch.GaleShapley(big)
	chain2, err := stablematch.LatticeWalk(big, m0big, stablematch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fast, err := stablematch.FastLatticeWalk(big, m0big, stablematch.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrandom n=200 instance: sequential chain of %d stable matchings;\n", len(chain2))
	fmt.Printf("parallel fast walk (all exposed rotations per step) needs only %d steps.\n", len(fast)-1)
}
