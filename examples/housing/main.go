// Housing allocation: the paper's §I motivation.
//
// Families (applicants) rank government-owned houses (posts); demand skews
// toward a few desirable houses. Popular matchings are a fragile resource:
// as contention grows, they stop existing — Algorithm 1 decides this in
// polylog parallel rounds. The example shows the feasibility phase
// transition, then compares the §IV variants (plain popular, maximum-
// cardinality, rank-maximal, fair) on solvable draws, including their
// §IV-E profiles and last-resort counts.
//
// Run: go run ./examples/housing
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/popmatch"
)

const (
	families = 300
	houses   = 450
)

// solvableDraw retries a generator until Algorithm 1 reports existence.
func solvableDraw(rng *rand.Rand, gen func() *popmatch.Instance) (*popmatch.Instance, popmatch.Result) {
	for tries := 0; tries < 500; tries++ {
		ins := gen()
		r, err := popmatch.Solve(ins, popmatch.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if r.Exists {
			return ins, r
		}
	}
	log.Fatal("no solvable draw in 500 tries; lower the contention")
	return nil, popmatch.Result{}
}

func main() {
	rng := rand.New(rand.NewSource(2020))

	fmt.Printf("housing allocation: %d families, %d houses\n\n", families, houses)
	fmt.Println("feasibility phase transition (list length vs skew):")
	fmt.Println("  lists   skew   solvable/20")
	for _, cfg := range []struct {
		minLen, maxLen int
		skew           float64
	}{
		{3, 7, 0.0}, {3, 7, 0.4}, {3, 7, 0.8},
		{2, 4, 0.0}, {2, 4, 0.4}, {2, 4, 0.8},
	} {
		solvable := 0
		for i := 0; i < 20; i++ {
			var ins *popmatch.Instance
			if cfg.skew == 0 {
				ins = popmatch.RandomStrict(rng, families, houses, cfg.minLen, cfg.maxLen)
			} else {
				ins = popmatch.RandomZipf(rng, families, houses, cfg.maxLen, cfg.skew)
			}
			r, err := popmatch.Solve(ins, popmatch.Options{})
			if err != nil {
				log.Fatal(err)
			}
			if r.Exists {
				solvable++
			}
		}
		fmt.Printf("  %d-%d    %4.1f   %d/20\n", cfg.minLen, cfg.maxLen, cfg.skew, solvable)
	}

	fmt.Println("\nvariant comparison over 10 solvable draws:")
	fmt.Printf("  %-18s %12s %12s %12s\n", "variant", "avg size", "avg rank-1", "avg last-res")
	type acc struct {
		size, rank1, lastRes int
	}
	sums := map[string]*acc{}
	order := []string{"popular", "max-cardinality", "rank-maximal", "fair"}
	for _, name := range order {
		sums[name] = &acc{}
	}
	const draws = 10
	for d := 0; d < draws; d++ {
		ins, plain := solvableDraw(rng, func() *popmatch.Instance {
			return popmatch.RandomStrict(rng, families, houses, 3, 7)
		})
		o := popmatch.Options{}
		mc, err := popmatch.MaxCardinality(ins, o)
		if err != nil {
			log.Fatal(err)
		}
		rm, err := popmatch.RankMaximal(ins, o)
		if err != nil {
			log.Fatal(err)
		}
		fair, err := popmatch.Fair(ins, o)
		if err != nil {
			log.Fatal(err)
		}
		if fair.Size != mc.Size {
			log.Fatalf("fair size %d != max-card size %d", fair.Size, mc.Size)
		}
		for name, r := range map[string]popmatch.Result{
			"popular": plain, "max-cardinality": mc, "rank-maximal": rm, "fair": fair,
		} {
			if err := popmatch.Verify(ins, r.Matching, o); err != nil {
				log.Fatalf("%s not popular: %v", name, err)
			}
			prof := popmatch.Profile(ins, r.Matching)
			s := sums[name]
			s.size += r.Size
			s.rank1 += prof[0]
			s.lastRes += prof[len(prof)-1]
		}
	}
	for _, name := range order {
		s := sums[name]
		fmt.Printf("  %-18s %12.1f %12.1f %12.1f\n", name,
			float64(s.size)/draws, float64(s.rank1)/draws, float64(s.lastRes)/draws)
	}
	fmt.Println("\nall outputs verified popular (Theorem 1); fair always matches max-cardinality size.")
}
