package repro

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// End-to-end test of the popserved daemon binary: build it, start it on a
// kernel-chosen port, drive the documented HTTP workflow (upload → solve →
// verify → stats), then shut it down with SIGTERM and require a clean exit.
// This is the same sequence the CI smoke step runs with curl.

func TestCLIPopservedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := filepath.Join(t.TempDir(), "popserved")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/popserved").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-workers", "2", "-linger", "500us")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// First stdout line announces the address.
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading address line: %v (stderr: %s)", err, stderr.String())
	}
	const prefix = "popserved listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix))

	post := func(path, contentType, body string, out any) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, contentType, strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if out != nil {
			if err := json.Unmarshal(buf.Bytes(), out); err != nil {
				t.Fatalf("POST %s: bad JSON %q: %v", path, buf.String(), err)
			}
		}
		return resp.StatusCode, buf.String()
	}

	// Generate an instance with the sibling tool and upload it.
	instance, err := runTool(t, "", "./cmd/geninstance", "-kind", "capacitated",
		"-applicants", "24", "-posts", "10", "-maxlen", "4", "-maxcap", "3", "-seed", "13")
	if err != nil {
		t.Fatalf("geninstance: %v\n%s", err, instance)
	}
	var info struct {
		ID          string `json:"id"`
		Capacitated bool   `json:"capacitated"`
	}
	if code, raw := post("/v1/instances", "text/plain", instance, &info); code != http.StatusCreated {
		t.Fatalf("upload: %d %s", code, raw)
	}
	if !info.Capacitated || info.ID == "" {
		t.Fatalf("upload info: %+v", info)
	}

	// Solve, twice: the repeat must come from the cache.
	solveBody := fmt.Sprintf(`{"instance": %q, "mode": "maxcard"}`, info.ID)
	var solved struct {
		Exists bool    `json:"exists"`
		Cached bool    `json:"cached"`
		PostOf []int32 `json:"post_of"`
	}
	if code, raw := post("/v1/solve", "application/json", solveBody, &solved); code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, raw)
	}
	if !solved.Exists || solved.Cached {
		t.Fatalf("first solve: %+v", solved)
	}
	first := append([]int32(nil), solved.PostOf...)
	if code, _ := post("/v1/solve", "application/json", solveBody, &solved); code != http.StatusOK || !solved.Cached {
		t.Fatalf("repeat solve not cached: %d %+v", code, solved)
	}

	// Verify the solution over HTTP.
	pb, _ := json.Marshal(first)
	var verdict struct {
		Popular bool `json:"popular"`
	}
	if code, raw := post("/v1/verify", "application/json",
		fmt.Sprintf(`{"instance": %q, "post_of": %s}`, info.ID, pb), &verdict); code != http.StatusOK || !verdict.Popular {
		t.Fatalf("verify: %d %s", code, raw)
	}

	// Stats went up.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]int64
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats["requests"] < 2 || stats["cache_hits"] < 1 || stats["solves"] < 1 {
		t.Fatalf("stats: %v", stats)
	}

	// SIGTERM → clean exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v (stderr: %s)", err, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
