package repro

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// End-to-end test of the popserved daemon binary: build it, start it on a
// kernel-chosen port, drive the documented HTTP workflow (upload → solve →
// verify → stats), then shut it down with SIGTERM and require a clean exit.
// This is the same sequence the CI smoke step runs with curl.

// launchPopserved starts the built daemon with args, waits for its address
// line, and returns the base URL plus the process for shutdown. The process
// is killed at test cleanup if still running.
func launchPopserved(t *testing.T, bin string, args ...string) (string, *exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cmd.Process.Kill() })

	// First stdout line announces the address.
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading address line: %v (stderr: %s)", err, stderr.String())
	}
	const prefix = "popserved listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	return "http://" + strings.TrimSpace(strings.TrimPrefix(line, prefix)), cmd, &stderr
}

// stopPopserved sends SIGTERM and requires a clean exit 0.
func stopPopserved(t *testing.T, cmd *exec.Cmd, stderr *bytes.Buffer) {
	t.Helper()
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit: %v (stderr: %s)", err, stderr.String())
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}

func TestCLIPopservedEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := filepath.Join(t.TempDir(), "popserved")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/popserved").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	base, cmd, stderr := launchPopserved(t, bin, "-workers", "2", "-linger", "500us")

	post := func(path, contentType, body string, out any) (int, string) {
		t.Helper()
		resp, err := http.Post(base+path, contentType, strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		if out != nil {
			if err := json.Unmarshal(buf.Bytes(), out); err != nil {
				t.Fatalf("POST %s: bad JSON %q: %v", path, buf.String(), err)
			}
		}
		return resp.StatusCode, buf.String()
	}

	// Generate an instance with the sibling tool and upload it.
	instance, err := runTool(t, "", "./cmd/geninstance", "-kind", "capacitated",
		"-applicants", "24", "-posts", "10", "-maxlen", "4", "-maxcap", "3", "-seed", "13")
	if err != nil {
		t.Fatalf("geninstance: %v\n%s", err, instance)
	}
	var info struct {
		ID          string `json:"id"`
		Capacitated bool   `json:"capacitated"`
	}
	if code, raw := post("/v1/instances", "text/plain", instance, &info); code != http.StatusCreated {
		t.Fatalf("upload: %d %s", code, raw)
	}
	if !info.Capacitated || info.ID == "" {
		t.Fatalf("upload info: %+v", info)
	}

	// Solve, twice: the repeat must come from the cache.
	solveBody := fmt.Sprintf(`{"instance": %q, "mode": "maxcard"}`, info.ID)
	var solved struct {
		Exists bool    `json:"exists"`
		Cached bool    `json:"cached"`
		PostOf []int32 `json:"post_of"`
	}
	if code, raw := post("/v1/solve", "application/json", solveBody, &solved); code != http.StatusOK {
		t.Fatalf("solve: %d %s", code, raw)
	}
	if !solved.Exists || solved.Cached {
		t.Fatalf("first solve: %+v", solved)
	}
	first := append([]int32(nil), solved.PostOf...)
	if code, _ := post("/v1/solve", "application/json", solveBody, &solved); code != http.StatusOK || !solved.Cached {
		t.Fatalf("repeat solve not cached: %d %+v", code, solved)
	}

	// Verify the solution over HTTP.
	pb, _ := json.Marshal(first)
	var verdict struct {
		Popular bool `json:"popular"`
	}
	if code, raw := post("/v1/verify", "application/json",
		fmt.Sprintf(`{"instance": %q, "post_of": %s}`, info.ID, pb), &verdict); code != http.StatusOK || !verdict.Popular {
		t.Fatalf("verify: %d %s", code, raw)
	}

	// Stats went up.
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]int64
	json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if stats["requests"] < 2 || stats["cache_hits"] < 1 || stats["solves"] < 1 {
		t.Fatalf("stats: %v", stats)
	}

	// SIGTERM → clean exit 0.
	stopPopserved(t, cmd, stderr)
}

// TestCLIPopservedStoreRestart proves the persistence contract end to end:
// instances uploaded to a -store daemon (one text, one binary) survive a
// SIGTERM restart — the second process re-serves both from mmap'd store
// files with zero re-parses (uploads_text == uploads_binary == 0 while
// store_loaded == 2), under the same ids, with solves still working — and
// an eviction is equally durable.
func TestCLIPopservedStoreRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	bin := filepath.Join(t.TempDir(), "popserved")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/popserved").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	store := t.TempDir()

	textIns, err := runTool(t, "", "./cmd/geninstance", "-kind", "solvable",
		"-applicants", "30", "-posts", "40", "-maxlen", "4", "-seed", "21")
	if err != nil {
		t.Fatalf("geninstance: %v\n%s", err, textIns)
	}
	binIns, err := runTool(t, "", "./cmd/geninstance", "-kind", "ties",
		"-applicants", "25", "-posts", "20", "-maxlen", "4", "-seed", "22", "-format", "binary")
	if err != nil {
		t.Fatalf("geninstance -format binary: %v", err)
	}

	getStats := func(base string) map[string]int64 {
		t.Helper()
		resp, err := http.Get(base + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats map[string]int64
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		return stats
	}
	upload := func(base, contentType, body string) string {
		t.Helper()
		resp, err := http.Post(base+"/v1/instances", contentType, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil || info.ID == "" {
			t.Fatalf("upload: id missing (%v)", err)
		}
		return info.ID
	}

	base, cmd, stderr := launchPopserved(t, bin, "-store", store)
	textID := upload(base, "text/plain", textIns)
	binID := upload(base, "application/x-popmatch-binary", binIns)
	s1 := getStats(base)
	if s1["uploads_text"] != 1 || s1["uploads_binary"] != 1 || s1["store_loaded"] != 0 {
		t.Fatalf("first run stats: %v", s1)
	}
	stopPopserved(t, cmd, stderr)

	// Restart on the same store: both instances come back from disk.
	base, cmd, stderr = launchPopserved(t, bin, "-store", store)
	s2 := getStats(base)
	if s2["store_loaded"] != 2 || s2["instances"] != 2 {
		t.Fatalf("restart stats: %v", s2)
	}
	if s2["uploads_text"] != 0 || s2["uploads_binary"] != 0 {
		t.Fatalf("restart re-parsed an upload: %v", s2)
	}
	for _, id := range []string{textID, binID} {
		resp, err := http.Get(base + "/v1/instances/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("instance %s did not survive the restart: %d", id, resp.StatusCode)
		}
	}
	solveBody := fmt.Sprintf(`{"instance": %q, "mode": "maxcard"}`, textID)
	resp, err := http.Post(base+"/v1/solve", "application/json", strings.NewReader(solveBody))
	if err != nil {
		t.Fatal(err)
	}
	var solved struct {
		Exists bool `json:"exists"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&solved); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !solved.Exists {
		t.Fatalf("solve after restart: %d %+v", resp.StatusCode, solved)
	}

	// Evict one; it must stay gone across another restart.
	req, _ := http.NewRequest(http.MethodDelete, base+"/v1/instances/"+binID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("evict status %d", dresp.StatusCode)
	}
	stopPopserved(t, cmd, stderr)

	base, cmd, stderr = launchPopserved(t, bin, "-store", store)
	s3 := getStats(base)
	if s3["store_loaded"] != 1 || s3["instances"] != 1 {
		t.Fatalf("post-evict restart stats: %v", s3)
	}
	stopPopserved(t, cmd, stderr)
}
