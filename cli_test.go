package repro

import (
	"bytes"
	"os/exec"
	"strconv"
	"strings"
	"testing"

	"repro/popmatch"
)

// End-to-end tests of the command-line tools, run via `go run` so they
// exercise exactly what a user invokes. Skipped under -short.

func runTool(t *testing.T, stdin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

func TestCLIGenerateAndSolvePipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	instance, err := runTool(t, "", "./cmd/geninstance", "-kind", "solvable",
		"-applicants", "20", "-posts", "30", "-maxlen", "4", "-seed", "7")
	if err != nil {
		t.Fatalf("geninstance: %v\n%s", err, instance)
	}
	if !strings.HasPrefix(instance, "posts 30") {
		t.Fatalf("unexpected instance header:\n%s", instance)
	}
	for _, mode := range []string{"popular", "maxcard", "fair", "rankmax", "ties", "tiesmax"} {
		out, err := runTool(t, instance, "./cmd/popmatch", "-mode", mode, "-verify", "-stats")
		if err != nil {
			t.Fatalf("popmatch -mode %s: %v\n%s", mode, err, out)
		}
		if !strings.Contains(out, "# verified popular") {
			t.Fatalf("mode %s: verification line missing:\n%s", mode, out)
		}
		if !strings.Contains(out, "a0 ->") {
			t.Fatalf("mode %s: assignments missing:\n%s", mode, out)
		}
	}
}

// TestCLIBinaryFormatPipeline pins the cross-format CLI contract:
// geninstance -format binary emits the binary encoding, popmatch
// auto-detects it by magic, and the solve output is byte-identical to the
// text pipeline over the same generated instance.
func TestCLIBinaryFormatPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	gen := []string{"./cmd/geninstance", "-kind", "ties",
		"-applicants", "25", "-posts", "20", "-maxlen", "4", "-tieprob", "0.4", "-seed", "9"}
	textIns, err := runTool(t, "", gen...)
	if err != nil {
		t.Fatalf("geninstance: %v\n%s", err, textIns)
	}
	binIns, err := runTool(t, "", append(gen, "-format", "binary")...)
	if err != nil {
		t.Fatalf("geninstance -format binary: %v", err)
	}
	if !strings.HasPrefix(binIns, "\x89PMC") {
		t.Fatalf("binary output does not start with the magic: %q", binIns[:min(16, len(binIns))])
	}
	fromText, err := runTool(t, textIns, "./cmd/popmatch", "-mode", "tiesmax", "-verify")
	if err != nil {
		t.Fatalf("popmatch over text: %v\n%s", err, fromText)
	}
	fromBinary, err := runTool(t, binIns, "./cmd/popmatch", "-mode", "tiesmax", "-verify")
	if err != nil {
		t.Fatalf("popmatch over binary: %v\n%s", err, fromBinary)
	}
	if fromText != fromBinary {
		t.Fatalf("solve output differs across formats:\ntext:\n%s\nbinary:\n%s", fromText, fromBinary)
	}
}

func TestCLIUnsolvableExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	instance, err := runTool(t, "", "./cmd/geninstance", "-kind", "unsolvable", "-depth", "2")
	if err != nil {
		t.Fatalf("geninstance: %v", err)
	}
	out, err := runTool(t, instance, "./cmd/popmatch")
	if err == nil {
		t.Fatalf("popmatch should exit non-zero on unsolvable instances:\n%s", out)
	}
	if !strings.Contains(out, "no popular matching exists") {
		t.Fatalf("missing diagnostic:\n%s", out)
	}
}

func TestCLIStableNext(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	out, err := runTool(t, "", "./cmd/stablenext", "-n", "0")
	if err != nil {
		t.Fatalf("stablenext: %v\n%s", err, out)
	}
	// The paper instance exposes exactly two rotations.
	if !strings.Contains(out, "rotation 0:") || !strings.Contains(out, "rotation 1:") {
		t.Fatalf("expected two rotations:\n%s", out)
	}
	walk, err := runTool(t, "", "./cmd/stablenext", "-n", "0", "-walk")
	if err != nil {
		t.Fatalf("stablenext -walk: %v\n%s", err, walk)
	}
	// The walk starts from the paper's underlined M (not the man-optimal
	// matching), from which the chain to the woman-optimal matching has
	// five elements.
	if !strings.Contains(walk, "# chain length 5") {
		t.Fatalf("paper instance chain from M should have length 5:\n%s", walk)
	}
}

// TestCLIGenInstanceScaling smoke-tests geninstance across the sizes the
// large benchmark scenario needs: output at every n must start with the
// right header, parse back, and carry exactly n applicants — guarding the
// buffered streaming path that keeps generation from dominating benchmark
// setup.
func TestCLIGenInstanceScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	for _, n := range []int{100, 5000, 100000} {
		out, err := runTool(t, "", "./cmd/geninstance", "-kind", "random",
			"-applicants", strconv.Itoa(n), "-posts", strconv.Itoa(n), "-maxlen", "5", "-seed", "11")
		if err != nil {
			t.Fatalf("geninstance n=%d: %v\n%s", n, err, out)
		}
		if !strings.HasPrefix(out, "posts "+strconv.Itoa(n)+"\n") {
			t.Fatalf("n=%d: unexpected header: %.80q", n, out)
		}
		ins, err := popmatch.Read(strings.NewReader(out))
		if err != nil {
			t.Fatalf("n=%d: generated instance does not parse: %v", n, err)
		}
		if ins.NumApplicants != n || ins.NumPosts != n {
			t.Fatalf("n=%d: parsed %d applicants / %d posts", n, ins.NumApplicants, ins.NumPosts)
		}
	}
}

func TestCLIPopbenchSingleTable(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	out, err := runTool(t, "", "./cmd/popbench", "-table", "T1")
	if err != nil {
		t.Fatalf("popbench: %v\n%s", err, out)
	}
	if !strings.Contains(out, "T1 — Lemma 2") || !strings.Contains(out, "broom d=16") {
		t.Fatalf("table output incomplete:\n%s", out)
	}
}

func TestCLIRejectsBadFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI integration test")
	}
	if out, err := runTool(t, "posts 1\na0: p0\n", "./cmd/popmatch", "-mode", "nonsense"); err == nil {
		t.Fatalf("bad mode accepted:\n%s", out)
	}
	if out, err := runTool(t, "", "./cmd/popbench", "-table", "T99"); err == nil {
		t.Fatalf("bad table accepted:\n%s", out)
	}
	if out, err := runTool(t, "", "./cmd/geninstance", "-kind", "nonsense"); err == nil {
		t.Fatalf("bad kind accepted:\n%s", out)
	}
}
