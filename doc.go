// Package repro reproduces Hu & Garg, "NC Algorithms for Popular Matchings
// in One-Sided Preference Systems and Related Problems" (IPDPS 2020).
//
// The public API lives in the popmatch and stablematch packages; the
// parallel substrate and algorithm internals are under internal/. The
// benchmarks in bench_test.go regenerate the experiment tables of
// EXPERIMENTS.md (one benchmark family per table); cmd/popbench prints the
// tables directly.
package repro
