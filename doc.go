// Package repro reproduces Hu & Garg, "NC Algorithms for Popular Matchings
// in One-Sided Preference Systems and Related Problems" (IPDPS 2020).
//
// The public API lives in the popmatch and stablematch packages. The
// recommended entry point for anything beyond a single computation is the
// reusable handle:
//
//	s := popmatch.NewSolver(popmatch.Options{})
//	defer s.Close()
//	res, err := s.Solve(ctx, ins)              // context-cancellable
//	results, err := s.SolveBatch(ctx, instances)
//
// A Solver runs on a persistent execution context (internal/exec): worker
// goroutines and scratch buffers survive across solves, and every parallel
// round boundary checks the context for cancellation. The pre-existing
// one-shot functions (popmatch.Solve, ...) remain as thin wrappers.
//
// Every solve surface dispatches through one mode-driven engine
// (internal/core.Engine): a Request carries a Mode — popular, maxcard,
// ties, tiesmax, maxweight, minweight, rankmaximal, fair — from the single
// enum that core defines and popmatch, internal/serve and the CLIs
// re-export, so routing (capacitated clone reduction, strictness checks,
// cancellation, result recycling) exists once. The engine lives on the
// solve session's arena and owns an arena-resident kernel per path: the
// strict kernel (prebound loop closures over the CSR), the §V ties kernel
// (pooled rank-one graph, Hopcroft–Karp/EOU scratch, flat weight table,
// Hungarian working arrays), a clone expansion cached per instance, and a
// pooled big.Int allocator for the positional-profile weights — so a
// reused Solver's SolveRequestInto reaches zero (strict, ties) or
// near-zero (capacitated, weighted) steady-state allocations in every
// mode; see popmatch/alloc_test.go and the CI allocation canary.
//
// Capacitated posts (CHA) are supported end to end: instances built with
// popmatch.NewCapacitated (or carrying a `c` capacity header in the text
// format) route through the post-cloning reduction onto the ties solver and
// fold back to a many-to-one Assignment; see the README's "Capacitated
// posts" section. A brute-force popularity oracle (internal/onesided)
// cross-validates both the unit and capacitated paths in the differential
// test suites, including "no popular matching exists" answers.
//
// On top of the Solver sits the serving layer (internal/serve, exposed by
// the cmd/popserved HTTP daemon): an instance registry keyed by content
// fingerprint (onesided.Instance.Fingerprint) holding immutable
// solver-ready snapshots, a request queue that coalesces concurrent solve
// requests into micro-batches dispatched onto one shared Solver (duplicate
// requests share a single solve under an exec.JoinContext of their request
// contexts), an LRU result cache keyed by (fingerprint, mode) that answers
// repeat queries without invoking the kernel, and admission control that
// fails fast when the queue is full. The closed-loop load baseline lives in
// BENCH_serve.json (popbench -scenario serve). See the README's "Serving"
// section for the curl walkthrough.
//
// The serving tier scales horizontally through the shard layer
// (internal/shard, exposed by the cmd/poprouter daemon): a stateless
// router that places every instance on a shard by rendezvous-hashing its
// content fingerprint over the shard list and proxies the full popserved
// API to the owner. Shards are shared-nothing popserved processes — each
// owns its registry, cache and solver pool — so placement is
// deterministic across routers and restarts, a solve through the router
// is bit-identical to a solve against the owning shard, and one shard is
// the degenerate case with unchanged single-process behavior. The router
// adds optional replication with read fail-over, per-shard health probes,
// in-flight bounds with 429+Retry-After load shedding, per-shard metric
// series and X-Request-Id propagation; BENCH_shard.json (popbench
// -scenario shard) records the closed-loop shard-count sweep. See the
// README's "Sharding" section.
//
// Observability is one dependency-free layer (internal/obs): atomic
// counters and gauges plus lock-free log2-bucketed latency histograms on a
// named registry with Prometheus text exposition. The serving layer hangs
// its counter block and three latency histograms (request duration by
// route, kernel solve, batch flush) on it — GET /metrics scrapes it, and
// popserved's -debug-addr adds a second listener carrying /metrics plus
// net/http/pprof. Per-solve tracing rides the same machinery one level
// down: popmatch.Request.Trace captures a SolveTrace — per-phase rounds,
// work and wall time (validate, build-reduced, peel, promote, splice) plus
// total barrier-wait — from solve-local atomics at <= 1 alloc per traced
// solve (a CI canary pins the overhead within 5% of an untraced solve);
// the HTTP surface exposes it as "trace": true and the CLI as popmatch
// -trace. Logs are structured (log/slog): serve.Config.Logger receives one
// access line per request carrying the X-Request-Id (echoed or minted),
// which error bodies repeat as request_id. See the README's
// "Observability" section.
//
// Mutating workloads use the delta layer instead of re-uploading:
// onesided.Instance carries a mutation API (SetPreferences, AddApplicant,
// RemoveApplicant, SetCapacity) that patches the cached CSR in place,
// journals each edit and advances an epoch with an incrementally-maintained
// fingerprint; popmatch.DeltaSession (Solver.SolveDelta/SolveDeltaInto)
// warm-starts the next solve from the previous matching by re-peeling only
// the G′ components reachable from the edited rows — bit-identical to a
// full solve, with a transparent full-solve fallback when the dirty region
// outgrows the warm thresholds. Over HTTP (internal/serve) the same
// machinery is a session: a mutable fork of a registered snapshot with
// serialized mutations and epoch-keyed result caching (POST /v1/sessions,
// .../mutations, .../solve). The trajectory baseline lives in
// BENCH_delta.json (popbench -scenario delta): 8.3x over a full re-solve
// on single-row edits at n=100k. See the README's "Delta solves" section.
//
// Instances enter the system through two wire formats: the line-oriented
// text format (for humans) and a versioned little-endian columnar binary
// format that mirrors the CSR core exactly (onesided.EncodeBinary /
// DecodeBinary, magic "\x89PMC\r\n\x1a\n"), so an uploaded or on-disk
// instance is validated in one bounds-checking pass and aliased — or
// mmap'd via onesided.MapBinaryFile — straight into the kernel with zero
// conversion, streaming the content fingerprint during that same pass.
// popmatch re-exports ReadAuto/ReadBinary/WriteBinary; every CLI ingest
// path auto-detects the format by magic, the serve upload endpoint
// negotiates it by Content-Type (415 otherwise), and `popserved -store`
// persists the registry as binary files re-mmap'd on restart. At n=10^6
// the alias decode ingests 9.7x faster than the text parser at 6 allocs
// per op (BENCH_ingest.json, popbench -scenario ingest).
//
// Internally every solver layer shares one flat instance representation:
// the CSR core (internal/onesided.CSR) — preference lists concatenated into
// three contiguous Off/Post/Rank arrays, derived once per Instance and
// cached (capacitated instances additionally cache their clone expansion,
// Instance.Expanded). An Instance is consequently immutable once solved or
// queried; mutate-then-Invalidate is the documented escape hatch, enforced
// by `-tags debug` builds. See the README's "Architecture" section for the
// layer stack (onesided → core.Engine → exec → popmatch → serve → shard →
// cmd) and
// when CSR vs Instance is the right type.
//
// The paper's PRAM rounds run on the internal/par substrate: a persistent
// worker pool driven by a chunk-claiming round scheduler. Each
// bulk-synchronous round publishes one cache-line-padded descriptor;
// workers claim fixed-grain index chunks off a single atomic cursor (no
// per-chunk channel handoff, no full-barrier recruitment), spin briefly
// before parking, and the shared grain policy (par.Grain / par.RowGrain
// with the par.MinGrain floor) sizes chunks to amortize the claim and
// align bit-matrix work to whole cache lines of words. Worker count never
// changes results: the corpus-wide differential test pins every engine
// mode bit-identical at workers 1/2/8 under -race, and the popbench
// scaling scenario (BENCH_scaling.json) records speedup curves together
// with that identity check and the host's CPU count. See the README's
// "Parallelism" section.
//
// The parallel substrate and algorithm internals are under internal/; see
// README.md for the package map. The benchmarks in bench_test.go regenerate
// the experiment tables of EXPERIMENTS.md (one benchmark family per table);
// cmd/popbench prints the tables directly, and `popbench -json` emits the
// machine-readable scenario benchmarks recorded in BENCH_pool.json,
// BENCH_capacitated.json, BENCH_csr.json (the flat-core before/after),
// BENCH_delta.json (incremental vs full re-solve) and BENCH_scaling.json
// (the worker-count scaling curves).
package repro
