// Benchmark harness: one benchmark family per experiment table of
// EXPERIMENTS.md (T1..T8). The paper is a theory paper without measured
// tables, so these benchmarks regenerate the quantities its figures, lemmas
// and theorems predict; `go test -bench=. -benchmem` runs everything and
// cmd/popbench prints the same data as tables.
package repro

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/bipartite"
	"repro/internal/core"
	"repro/internal/onesided"
	"repro/internal/par"
	"repro/internal/pseudoforest"
	"repro/internal/seq"
	"repro/internal/stable"
)

// --- T1 / E4: Lemma 2 peeling rounds (the broom forces depth rounds) ---

func BenchmarkPeelingRoundsBroom(b *testing.B) {
	for _, depth := range []int{8, 12, 16} {
		ins := onesided.BinaryBroom(depth)
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Popular(ins, core.Options{})
				if err != nil || !res.Exists {
					b.Fatal("broom must be solvable")
				}
				if res.Peel.Rounds != depth {
					b.Fatalf("rounds = %d, want %d", res.Peel.Rounds, depth)
				}
			}
		})
	}
}

// --- T2 / E5: Theorem 3, parallel popular matching vs workers and baseline ---

func BenchmarkPopular(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10000, 100000} {
		ins := onesided.RandomStrict(rng, n, n, 1, 6)
		for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
			pool := par.NewPool(workers)
			defer pool.Close()
			b.Run(fmt.Sprintf("n=%d/P=%d", n, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := core.Popular(ins, core.Options{Pool: pool}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkPopularSequentialBaseline(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{10000, 100000} {
		ins := onesided.RandomStrict(rng, n, n, 1, 6)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := seq.Popular(ins); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T3 / E6: Theorem 10, maximum-cardinality popular matching ---

func BenchmarkMaxCardinality(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{10000, 50000} {
		ins := solvableUniformInstance(rng, n, b)
		b.Run(fmt.Sprintf("parallel/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.MaxCardinality(ins, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("sequential/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := seq.MaxCardinality(ins); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- T4 / E7: §IV-A cycle-detection ablation ---

func BenchmarkCycleMethods(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	pool := par.NewPool(0)
	defer pool.Close()
	n := 256
	succ := make([]int32, n)
	for v := range succ {
		if rng.Float64() < 0.1 {
			succ[v] = -1
		} else {
			u := rng.Intn(n)
			for u == v {
				u = rng.Intn(n)
			}
			succ[v] = int32(u)
		}
	}
	g, err := pseudoforest.New(succ)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("doubling", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pseudoforest.CyclesByDoubling(pool, g)
		}
	})
	b.Run("closure", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pseudoforest.CyclesByClosure(pool, g)
		}
	})
	b.Run("rank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pseudoforest.CyclesByRank(pool, g)
		}
	})
	b.Run("cc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pseudoforest.CyclesByCC(pool, g)
		}
	})
}

// --- T5 / E8: Theorem 11 reduction ---

func BenchmarkTiesReduction(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{200, 400} {
		g := bipartite.New(n, n)
		for l := 0; l < n; l++ {
			for r := 0; r < n; r++ {
				if rng.Float64() < 6.0/float64(n) {
					g.AddEdge(int32(l), int32(r))
				}
			}
		}
		b.Run(fmt.Sprintf("viaPopular/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.MaxMatchingViaPopular(g, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("hopcroftKarp/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bipartite.HopcroftKarp(g)
			}
		})
	}
}

// --- T6 / E10: Theorem 16, Algorithm 4 ---

func BenchmarkNextStable(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{200, 1000} {
		ins := stable.Random(rng, n)
		m0 := stable.GaleShapley(ins)
		b.Run(fmt.Sprintf("rotations/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := stable.ExposedRotations(ins, m0, stable.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkLatticeWalk(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	ins := stable.Random(rng, 300)
	m0 := stable.GaleShapley(ins)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stable.LatticeWalk(ins, m0, stable.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- T7 / E11: §IV-E optimal variants ---

func BenchmarkOptimalVariants(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ins := solvableUniformInstance(rng, 4000, b)
	b.Run("rankMaximal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.RankMaximal(ins, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fair", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.Fair(ins, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- T8 / E12: NC cost accounting overhead ---

func BenchmarkPopularWithTracing(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	ins := onesided.RandomStrict(rng, 100000, 100000, 1, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var tr par.Tracer
		if _, err := core.Popular(ins, core.Options{Tracer: &tr}); err != nil {
			b.Fatal(err)
		}
	}
}

// solvableUniformInstance draws ratio-1.5 uniform instances until one admits
// a popular matching (a handful of tries suffice above the threshold).
func solvableUniformInstance(rng *rand.Rand, n int, b *testing.B) *onesided.Instance {
	for tries := 0; tries < 200; tries++ {
		ins := onesided.RandomStrict(rng, n, n+n/2, 3, 7)
		r, err := core.Popular(ins, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Exists {
			return ins
		}
	}
	b.Fatal("no solvable draw in 200 tries")
	return nil
}

// --- supporting micro-benchmarks: the ties solver and the oracle ---

func BenchmarkSolveTies(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	ins := onesided.RandomTies(rng, 300, 260, 2, 7, 0.35)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveTies(ins, true, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpopularityOracle(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	var ins *onesided.Instance
	var m *onesided.Matching
	for {
		ins = onesided.RandomStrict(rng, 100, 100, 2, 6)
		r, err := core.Popular(ins, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if r.Exists {
			m = r.Matching
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if onesided.UnpopularityMargin(ins, m) > 0 {
			b.Fatal("popular matching flagged unpopular")
		}
	}
}
